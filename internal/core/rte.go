// Package core implements Carpool itself: the multi-receiver PHY frame
// (preamble + Bloom-filter A-HDR + per-receiver subframes), the real-time
// channel estimator (RTE) that treats correctly decoded symbols as data
// pilots, the sequential-ACK NAV arithmetic, the aggregation policy, and
// the MU-MIMO extension.
package core

import (
	"math/cmplx"

	"carpool/internal/modem"
	"carpool/internal/obs"
	"carpool/internal/ofdm"
	"carpool/internal/phy"
)

// RTETracker is Carpool's real-time channel estimator (paper §5.1). Every
// symbol whose side-channel CRC verifies becomes a "data pilot": the
// receiver re-modulates its known bits, derives a fresh per-subcarrier
// channel observation, and folds it into the running estimate
//
//	H~n = (H~n-1 + Ĥn)/2    if symbol n decoded correctly      (Eq. 3)
//	H~n = H~n-1             otherwise.
//
// Only the 48 data subcarriers are updated; the common phase is measured
// per-symbol from the pilots anyway, so the update is phase-neutral (the
// tracked pilot phase is removed from the observation before averaging).
type RTETracker struct {
	h   []complex128
	mod modem.Modulation
	// updates counts how many symbols contributed data pilots, for
	// diagnostics and the evaluation harness.
	updates int
	rule    UpdateRule
	// Observability handles, resolved once per Init so the per-symbol
	// Observe path never touches the registry; nil when observation is
	// off.
	obsUpdates *obs.Counter
	obsTracer  *obs.Tracer
}

// UpdateRule selects how a fresh observation folds into the estimate — the
// DESIGN.md ablation of Eq. (3)'s averaging constant.
type UpdateRule int

// Update rules.
const (
	// RuleHalving is the paper's Eq. (3): H~ = (H~ + Ĥ)/2.
	RuleHalving UpdateRule = iota
	// RuleReplace trusts each observation fully: H~ = Ĥ. Fast tracking,
	// no noise averaging.
	RuleReplace
	// RuleEMA25 is a slow exponential average: H~ = 0.75 H~ + 0.25 Ĥ.
	RuleEMA25
)

// String names the rule.
func (r UpdateRule) String() string {
	switch r {
	case RuleHalving:
		return "eq3-halving"
	case RuleReplace:
		return "replace"
	case RuleEMA25:
		return "ema-0.25"
	default:
		return "UpdateRule(?)"
	}
}

// alpha returns the averaging weight on the fresh observation.
func (r UpdateRule) alpha() float64 {
	switch r {
	case RuleReplace:
		return 1
	case RuleEMA25:
		return 0.25
	default:
		return 0.5
	}
}

var _ phy.ChannelTracker = (*RTETracker)(nil)

// NewRTETracker returns an estimator using the paper's Eq. (3) rule.
func NewRTETracker() *RTETracker { return &RTETracker{rule: RuleHalving} }

// NewRTETrackerWithRule returns an estimator with an alternative update
// rule, used by the ablation benchmarks.
func NewRTETrackerWithRule(rule UpdateRule) *RTETracker { return &RTETracker{rule: rule} }

// Init seeds the estimate with the preamble (LTF) measurement.
func (t *RTETracker) Init(h []complex128, mod modem.Modulation) {
	t.h = append(t.h[:0], h...)
	t.mod = mod
	t.updates = 0
	if sink := obs.Active(); sink != nil {
		t.obsUpdates = sink.Counter("rte.updates")
		t.obsTracer = sink.Tracer
	} else {
		t.obsUpdates = nil
		t.obsTracer = nil
	}
}

// Estimate returns the current calibrated channel estimate.
func (t *RTETracker) Estimate() []complex128 { return t.h }

// Updates reports how many symbols have calibrated the estimate so far.
func (t *RTETracker) Updates() int { return t.updates }

// Observe applies Eq. (3): when the symbol's group CRC verified, the
// demapped bits are re-modulated into the known transmitted points Yn and
// each data subcarrier's estimate moves halfway toward the fresh
// observation Ĥn = Dn/Yn.
func (t *RTETracker) Observe(symIdx int, rawBins []complex128, pilotPhase float64, codedBits []byte, correct bool) {
	if !correct || len(t.h) != ofdm.NumSubcarriers || len(rawBins) != ofdm.NumSubcarriers {
		return
	}
	if len(codedBits) != ofdm.NumData*t.mod.BitsPerSymbol() {
		return
	}
	var points [ofdm.NumData]complex128
	if err := modem.MapInto(points[:], t.mod, codedBits); err != nil {
		return
	}
	// Remove the tracked common phase so the update never fights the
	// per-symbol pilot compensation.
	derot := cmplx.Exp(complex(0, -pilotPhase))
	for i, k := range ofdm.DataIndices {
		b := ofdm.Bin(k)
		fresh := rawBins[b] * derot / points[i]
		// Plausibility gate: a short CRC occasionally passes a symbol that
		// still has bit errors, and a wrongly re-modulated point yields an
		// observation far from any credible channel. Genuine channel drift
		// between updates is a few percent, so observations that jump more
		// than 50% are discarded for that subcarrier.
		cur := t.h[b]
		if d := cmplx.Abs(fresh - cur); cmplx.Abs(cur) > 0 && d > 0.5*cmplx.Abs(cur) {
			continue
		}
		// Weight the averaging step by the constellation point's energy:
		// an observation divided by a low-energy inner point (|Y|^2 down to
		// 2/42 for 64-QAM) carries proportionally amplified noise, so it
		// moves the estimate proportionally less. Unit-energy points
		// reproduce the configured rule exactly (Eq. (3)'s (H~ + Ĥ)/2 by
		// default).
		w := real(points[i])*real(points[i]) + imag(points[i])*imag(points[i])
		if w > 1 {
			w = 1
		}
		alpha := complex(w*t.rule.alpha(), 0)
		t.h[b] = (1-alpha)*cur + alpha*fresh
	}
	t.updates++
	t.obsUpdates.Inc()
	t.obsTracer.Emit(obs.EvRTEUpdate, int64(symIdx), int64(t.updates))
}
