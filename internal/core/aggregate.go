package core

import (
	"fmt"
	"time"

	"carpool/internal/bloom"
)

// Pending is one frame waiting in the AP's downlink queue.
type Pending struct {
	Dst      bloom.MAC
	Size     int // payload bytes
	Arrival  time.Duration
	Deadline time.Duration // zero means no latency bound
}

// Policy bounds a single Carpool aggregation (paper §7.2: "the aggregation
// process is ended when the size of the buffered frames reaches the maximum
// frame size or the delay of the oldest frame reaches the maximum latency
// limit").
type Policy struct {
	// MaxReceivers caps the number of distinct destinations per frame
	// (<= bloom.MaxReceivers). Zero selects the maximum.
	MaxReceivers int
	// MaxBytes caps total aggregated payload. Zero selects 64 KiB, the
	// 802.11n aggregate ceiling.
	MaxBytes int
}

func (p Policy) maxReceivers() int {
	if p.MaxReceivers <= 0 || p.MaxReceivers > bloom.MaxReceivers {
		return bloom.MaxReceivers
	}
	return p.MaxReceivers
}

func (p Policy) maxBytes() int {
	if p.MaxBytes <= 0 {
		return 64 << 10
	}
	return p.MaxBytes
}

// Validate reports configuration errors.
func (p Policy) Validate() error {
	if p.MaxReceivers < 0 {
		return fmt.Errorf("core: negative MaxReceivers %d", p.MaxReceivers)
	}
	if p.MaxReceivers > bloom.MaxReceivers {
		return fmt.Errorf("core: MaxReceivers %d exceeds Bloom limit %d", p.MaxReceivers, bloom.MaxReceivers)
	}
	if p.MaxBytes < 0 {
		return fmt.Errorf("core: negative MaxBytes %d", p.MaxBytes)
	}
	return nil
}

// Aggregate selects frames for one Carpool transmission from a FIFO queue.
// It walks the queue in arrival order (FIFO priority, §8), grouping frames
// by destination, until either cap is hit. Multiple frames for one
// destination become one subframe (MAC-level aggregation inside the
// Carpool subframe), so the receiver count — not the frame count — is what
// MaxReceivers bounds. It returns the chosen queue indices grouped per
// destination, in subframe order.
func (p Policy) Aggregate(queue []Pending) (perDst [][]int, err error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxRx := p.maxReceivers()
	maxBytes := p.maxBytes()
	dstSlot := make(map[bloom.MAC]int)
	total := 0
	for i, f := range queue {
		if f.Size <= 0 {
			return nil, fmt.Errorf("core: queued frame %d has size %d", i, f.Size)
		}
		slot, seen := dstSlot[f.Dst]
		if !seen && len(perDst) == maxRx {
			continue // no subframe slot left; later frames may still fit existing slots
		}
		if total+f.Size > maxBytes {
			break
		}
		if !seen {
			slot = len(perDst)
			dstSlot[f.Dst] = slot
			perDst = append(perDst, nil)
		}
		perDst[slot] = append(perDst[slot], i)
		total += f.Size
	}
	return perDst, nil
}

// OldestWaiting returns the queue's head-of-line delay at time now, zero
// for an empty queue.
func OldestWaiting(queue []Pending, now time.Duration) time.Duration {
	if len(queue) == 0 {
		return 0
	}
	return now - queue[0].Arrival
}
