package core

import (
	"math/rand"
	"reflect"
	"testing"

	"carpool/internal/channel"
	"carpool/internal/phy"
)

// TestReceiveFrameAllMatchesSequential is the determinism contract of the
// parallel fan-out: per-station results must be byte-identical to a plain
// sequential loop, regardless of scheduling.
func TestReceiveFrameAllMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	subs := []Subframe{
		{Receiver: mac(1), MCS: phy.MCS24, Payload: randomPayload(rng, 300)},
		{Receiver: mac(2), MCS: phy.MCS48, Payload: randomPayload(rng, 150)},
		{Receiver: mac(3), MCS: phy.MCS12, Payload: randomPayload(rng, 500)},
		{Receiver: mac(4), MCS: phy.MCS24, Payload: randomPayload(rng, 80)},
	}
	frame, err := BuildFrame(subs, FrameConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Each station hears the frame through its own channel realization.
	rxs := make([][]complex128, len(subs))
	cfgs := make([]ReceiverConfig, len(subs))
	for i, sub := range subs {
		ch, err := channel.New(channel.Config{
			SNRdB: 24, NumTaps: 3, RicianK: 12, TapDecay: 3, CFOHz: 400,
			Seed: int64(100 + i), CoherenceSymbols: channel.DefaultCoherenceSymbols,
		})
		if err != nil {
			t.Fatal(err)
		}
		tx := append(make([]complex128, 60), frame.Samples...)
		tx = append(tx, make([]complex128, 40)...)
		rxs[i] = ch.Transmit(tx)
		cfgs[i] = ReceiverConfig{MAC: sub.Receiver, UseRTE: i%2 == 0, KnownStart: -1}
	}

	want := make([]*FrameRx, len(subs))
	for i := range subs {
		want[i], err = ReceiveFrame(rxs[i], cfgs[i])
		if err != nil {
			t.Fatal(err)
		}
	}

	for trial := 0; trial < 5; trial++ {
		got, err := ReceiveFrameAll(rxs, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("trial %d: station %d parallel result differs from sequential", trial, i)
			}
		}
	}
}

func TestReceiveFrameAllLengthMismatch(t *testing.T) {
	if _, err := ReceiveFrameAll(make([][]complex128, 2), make([]ReceiverConfig, 1)); err == nil {
		t.Error("accepted mismatched lengths")
	}
}
