package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"carpool/internal/channel"
	"carpool/internal/phy"
)

// multiMatchFrame builds a frame where mac(1) owns three of the four
// subframes, so one reception decodes several independent payloads.
func multiMatchFrame(t *testing.T, rng *rand.Rand) (*Frame, [][]byte) {
	t.Helper()
	payloads := [][]byte{
		randomPayload(rng, 400),
		randomPayload(rng, 250),
		randomPayload(rng, 600),
		randomPayload(rng, 120),
	}
	subs := []Subframe{
		{Receiver: mac(1), MCS: phy.MCS24, Payload: payloads[0]},
		{Receiver: mac(2), MCS: phy.MCS48, Payload: payloads[1]},
		{Receiver: mac(1), MCS: phy.MCS12, Payload: payloads[2]},
		{Receiver: mac(1), MCS: phy.MCS36, Payload: payloads[3]},
	}
	frame, err := BuildFrame(subs, FrameConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return frame, payloads
}

// TestReceiveFrameParallelBitIdentical pins the phase-2 concurrency
// contract: decoding matched subframes across several workers must produce
// exactly the result of the sequential walk, field for field.
func TestReceiveFrameParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	frame, _ := multiMatchFrame(t, rng)
	for _, soft := range []bool{false, true} {
		cfg := ReceiverConfig{MAC: mac(1), UseRTE: true, KnownStart: 0, SoftFEC: soft}

		prev := runtime.GOMAXPROCS(1)
		seq, errSeq := ReceiveFrame(frame.Samples, cfg)
		runtime.GOMAXPROCS(4)
		par, errPar := ReceiveFrame(frame.Samples, cfg)
		runtime.GOMAXPROCS(prev)

		if errSeq != nil || errPar != nil {
			t.Fatalf("soft=%v: sequential err %v, parallel err %v", soft, errSeq, errPar)
		}
		if seq.Status != phy.StatusOK || len(seq.Subframes) != 3 {
			t.Fatalf("soft=%v: status %v with %d subframes", soft, seq.Status, len(seq.Subframes))
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("soft=%v: parallel decode diverged from sequential", soft)
		}
	}
}

// TestReceiveFrameSoftFECQuantized runs the quantized soft path end to end:
// clean loopback must recover every matched payload, and through a noisy
// channel the soft receiver must do at least as well as the hard one.
func TestReceiveFrameSoftFECQuantized(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	frame, payloads := multiMatchFrame(t, rng)
	res, err := ReceiveFrame(frame.Samples, ReceiverConfig{
		MAC: mac(1), UseRTE: true, KnownStart: 0, SoftFEC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != phy.StatusOK {
		t.Fatalf("status %v", res.Status)
	}
	want := map[int][]byte{1: payloads[0], 3: payloads[2], 4: payloads[3]}
	for _, sub := range res.Subframes {
		exp, ok := want[sub.Position]
		if !ok {
			t.Fatalf("unexpected subframe position %d", sub.Position)
		}
		if !bytes.Equal(sub.Payload, exp) {
			t.Errorf("position %d: quantized soft decode corrupted payload", sub.Position)
		}
	}
	if len(res.Subframes) != len(want) {
		t.Fatalf("decoded %d subframes, want %d", len(res.Subframes), len(want))
	}

	// Noisy channel: count payload failures over a few trials per mode.
	fails := func(soft bool) int {
		n := 0
		for trial := 0; trial < 6; trial++ {
			ch, err := channel.New(channel.Config{
				SNRdB: 17, NumTaps: 3, RicianK: 12, TapDecay: 3, CFOHz: 500,
				Seed: 100 + int64(trial), CoherenceSymbols: channel.DefaultCoherenceSymbols,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := ReceiveFrame(ch.Transmit(frame.Samples), ReceiverConfig{
				MAC: mac(1), UseRTE: true, KnownStart: 0, SoftFEC: soft,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != phy.StatusOK {
				n += len(want)
				continue
			}
			got := map[int][]byte{}
			for _, sub := range res.Subframes {
				got[sub.Position] = sub.Payload
			}
			for pos, exp := range want {
				if !bytes.Equal(got[pos], exp) {
					n++
				}
			}
		}
		return n
	}
	hard, soft := fails(false), fails(true)
	if soft > hard {
		t.Errorf("quantized soft path failed %d payloads vs %d hard — soft decisions should not hurt", soft, hard)
	}
}

// TestReceiveFrameSubframePathAllocs pins the per-reception allocation
// budget of the located-subframe decode path, so regressions in the pooled
// decoder workspaces or the flat Segment buffers show up.
func TestReceiveFrameSubframePathAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	frame, _ := multiMatchFrame(t, rng)
	cfg := ReceiverConfig{MAC: mac(1), UseRTE: true, KnownStart: 0, SoftFEC: true}
	if _, err := ReceiveFrame(frame.Samples, cfg); err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(1) // inline phase 2: measure allocations, not goroutine setup
	defer runtime.GOMAXPROCS(prev)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ReceiveFrame(frame.Samples, cfg); err != nil {
			t.Fatal(err)
		}
	})
	// The remaining allocations are the result structures the caller keeps
	// (FrameRx, Segments, payloads, sync buffer) plus per-subframe trackers;
	// the decode workspaces themselves are pooled or flat.
	const budget = 90
	if allocs > budget {
		t.Errorf("ReceiveFrame allocates %.0f/op on the subframe path, budget %d", allocs, budget)
	}
}
