// Package trace implements the paper's trace-driven MAC emulation
// methodology (§7.2.1): the PHY simulator is run offline for each receiver
// location — once decoding with the standard preamble-only channel estimate
// and once with Carpool's real-time estimation — recording per-symbol bit
// error counts for long frames. The MAC simulator then replays these traces
// to decide whether each (sub)frame, occupying some span of symbols at some
// coding rate, would have survived forward error correction.
package trace

import (
	"fmt"
	"math/rand"

	"carpool/internal/channel"
	"carpool/internal/core"
	"carpool/internal/fec"
	"carpool/internal/phy"
	"carpool/internal/sidechannel"
)

// Estimation selects the channel-estimation scheme a trace was decoded with.
type Estimation int

// Estimation schemes.
const (
	// Standard is the 802.11 preamble-only estimate (A-MPDU,
	// MU-Aggregation and plain 802.11 baselines).
	Standard Estimation = iota + 1
	// RTE is Carpool's real-time data-pilot estimation.
	RTE
)

// String names the scheme.
func (e Estimation) String() string {
	switch e {
	case Standard:
		return "standard"
	case RTE:
		return "RTE"
	default:
		return fmt.Sprintf("Estimation(%d)", int(e))
	}
}

// Config shapes trace collection.
type Config struct {
	// Power is the TX power magnitude (paper's USRP units).
	Power float64
	// MCS is the modulation/coding the trace frames use.
	MCS phy.MCS
	// NumSymbols is the trace frame length in OFDM symbols; subframe spans
	// queried later must fit inside it.
	NumSymbols int
	// Trials is the number of recorded frames per (location, scheme).
	Trials int
	// CoherenceSymbols and CFOHz parameterize the channel (zero
	// CoherenceSymbols selects channel.DefaultCoherenceSymbols).
	CoherenceSymbols float64
	CFOHz            float64
}

func (c Config) withDefaults() Config {
	if c.CoherenceSymbols == 0 {
		c.CoherenceSymbols = channel.DefaultCoherenceSymbols
	}
	if c.CFOHz == 0 {
		c.CFOHz = 400
	}
	if c.Trials == 0 {
		c.Trials = 20
	}
	if c.NumSymbols == 0 {
		c.NumSymbols = 160
	}
	if c.Power == 0 {
		c.Power = 0.2
	}
	return c
}

// Trace holds per-symbol error counts for repeated long-frame receptions on
// one link with one estimation scheme.
type Trace struct {
	Location   channel.Location
	Scheme     Estimation
	MCS        phy.MCS
	BitsPerSym int
	// Errors[trial][sym] is the raw (pre-FEC) bit error count of that
	// symbol; a lost frame (sync failure) records every symbol as fully
	// errored.
	Errors [][]uint16
}

// Collect runs the PHY once per trial over the location's channel and
// records the per-symbol error counts.
func Collect(loc channel.Location, est Estimation, cfg Config) (*Trace, error) {
	cfg = cfg.withDefaults()
	if !cfg.MCS.Valid() {
		return nil, fmt.Errorf("trace: invalid MCS")
	}
	if est != Standard && est != RTE {
		return nil, fmt.Errorf("trace: invalid estimation scheme %v", est)
	}
	// Payload sized to fill at least NumSymbols symbols.
	payloadBytes := (cfg.NumSymbols*cfg.MCS.DataBitsPerSymbol() - 16 - fec.TailBits) / 8
	if payloadBytes > 4095 {
		payloadBytes = 4095
	}
	chCfg, err := channel.LinkConfig(loc, cfg.Power, cfg.CoherenceSymbols, cfg.CFOHz)
	if err != nil {
		return nil, err
	}
	ch, err := channel.New(chCfg)
	if err != nil {
		return nil, err
	}
	scheme := sidechannel.DefaultScheme()
	rng := rand.New(rand.NewSource(chCfg.Seed ^ 0x5eed))
	payload := make([]byte, payloadBytes)

	tr := &Trace{
		Location:   loc,
		Scheme:     est,
		MCS:        cfg.MCS,
		BitsPerSym: cfg.MCS.CodedBitsPerSymbol(),
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		rng.Read(payload)
		frame, err := phy.Transmit(payload, phy.TxConfig{MCS: cfg.MCS, SideChannel: &scheme})
		if err != nil {
			return nil, err
		}
		var tracker phy.ChannelTracker
		if est == RTE {
			tracker = core.NewRTETracker()
		}
		res, err := phy.Receive(ch.Transmit(frame.Samples), phy.RxConfig{
			KnownStart: 0, SkipFEC: true, SideChannel: &scheme, Tracker: tracker,
		})
		if err != nil {
			return nil, err
		}
		nsym := len(frame.Blocks)
		row := make([]uint16, nsym)
		if res.Status != phy.StatusOK {
			for i := range row {
				row[i] = uint16(tr.BitsPerSym)
			}
		} else {
			errs, _ := phy.CompareBlocks(frame.Blocks, res.Blocks)
			for i, e := range errs {
				row[i] = uint16(e)
			}
		}
		tr.Errors = append(tr.Errors, row)
	}
	return tr, nil
}

// MeanBERBySymbol returns the across-trial BER per symbol index — the curve
// of Figs. 3 and 13.
func (t *Trace) MeanBERBySymbol() []float64 {
	if len(t.Errors) == 0 {
		return nil
	}
	n := len(t.Errors[0])
	out := make([]float64, n)
	for _, row := range t.Errors {
		for i, e := range row {
			out[i] += float64(e)
		}
	}
	denom := float64(len(t.Errors) * t.BitsPerSym)
	for i := range out {
		out[i] /= denom
	}
	return out
}
