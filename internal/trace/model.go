package trace

import (
	"fmt"
	"math/rand"

	"carpool/internal/channel"
	"carpool/internal/fec"
)

// viterbiThreshold is the coded-BER waterfall midpoint of the hard-decision
// Viterbi decoder per puncturing rate, calibrated on ~1500-byte frames with
// this repository's decoder: a frame whose span-average coded BER exceeds
// the threshold almost always fails FEC, and almost always survives below
// it.
var viterbiThreshold = map[fec.CodeRate]float64{
	fec.Rate1_2: 0.030,
	fec.Rate2_3: 0.012,
	fec.Rate3_4: 0.008,
}

// Model is the trace-driven frame-delivery oracle the MAC simulator
// queries. It holds one Trace per (location, estimation scheme).
//
// TrialHold adds temporal correlation: consecutive queries for one location
// replay the same recorded reception for TrialHold queries before switching
// to a fresh one. This models the fact that a retransmission a few
// milliseconds after a loss sees the same fading state, so a station in a
// bad channel epoch keeps failing rather than getting an independent draw.
// The default (1) keeps queries independent.
type Model struct {
	cfg       Config
	traces    map[int]map[Estimation]*Trace
	rng       *rand.Rand
	trialHold int
	holdState map[int]*holdState
}

type holdState struct {
	trial     int
	remaining int
}

// SetTrialHold configures the per-location correlation length (minimum 1).
func (m *Model) SetTrialHold(n int) {
	if n < 1 {
		n = 1
	}
	m.trialHold = n
}

// currentTrial returns the trial index to replay for a location.
func (m *Model) currentTrial(locID, numTrials int) int {
	if m.trialHold <= 1 {
		return m.rng.Intn(numTrials)
	}
	st, ok := m.holdState[locID]
	if !ok {
		st = &holdState{}
		m.holdState[locID] = st
		st.remaining = 0
	}
	if st.remaining == 0 {
		st.trial = m.rng.Intn(numTrials)
		st.remaining = m.trialHold
	}
	st.remaining--
	return st.trial
}

// newEmptyModel builds a model shell ready to receive traces.
func newEmptyModel(cfg Config, seed int64) *Model {
	return &Model{
		cfg:       cfg,
		traces:    make(map[int]map[Estimation]*Trace),
		rng:       rand.New(rand.NewSource(seed)),
		trialHold: 1,
		holdState: make(map[int]*holdState),
	}
}

// NewModel collects traces for every location with both estimation schemes.
// This runs the full PHY simulator (2 x len(locs) x cfg.Trials long frames)
// and is the expensive, do-once step of the methodology. Save/Load persist
// the result so tools can skip recollection.
func NewModel(locs []channel.Location, cfg Config, seed int64) (*Model, error) {
	cfg = cfg.withDefaults()
	m := newEmptyModel(cfg, seed)
	for _, loc := range locs {
		byScheme := make(map[Estimation]*Trace, 2)
		for _, est := range []Estimation{Standard, RTE} {
			tr, err := Collect(loc, est, cfg)
			if err != nil {
				return nil, fmt.Errorf("trace: collecting location %d %v: %w", loc.ID, est, err)
			}
			byScheme[est] = tr
		}
		m.traces[loc.ID] = byScheme
	}
	return m, nil
}

// NumSymbols returns the trace frame length — the longest span the model
// can answer for.
func (m *Model) NumSymbols() int { return m.cfg.NumSymbols }

// Locations returns the location IDs the model covers.
func (m *Model) Locations() []int {
	out := make([]int, 0, len(m.traces))
	for id := range m.traces {
		out = append(out, id)
	}
	return out
}

// SubframeOK replays one random recorded reception and reports whether a
// subframe spanning symbols [startSym, startSym+numSym) at the given coding
// rate would survive FEC: its span-average raw coded BER must stay under
// the Viterbi waterfall threshold.
func (m *Model) SubframeOK(locID int, est Estimation, startSym, numSym int, rate fec.CodeRate) (bool, error) {
	byScheme, ok := m.traces[locID]
	if !ok {
		return false, fmt.Errorf("trace: unknown location %d", locID)
	}
	tr, ok := byScheme[est]
	if !ok {
		return false, fmt.Errorf("trace: no %v trace for location %d", est, locID)
	}
	thr, ok := viterbiThreshold[rate]
	if !ok {
		return false, fmt.Errorf("trace: no threshold for rate %v", rate)
	}
	if numSym < 1 {
		return false, fmt.Errorf("trace: non-positive span %d", numSym)
	}
	row := tr.Errors[m.currentTrial(locID, len(tr.Errors))]
	end := startSym + numSym
	if startSym < 0 {
		startSym = 0
	}
	if end > len(row) {
		// Spans beyond the trace reuse the tail region, which is the
		// worst-case (most drifted) part of the recording.
		shift := end - len(row)
		startSym -= shift
		if startSym < 0 {
			startSym = 0
		}
		end = len(row)
	}
	total := 0
	for _, e := range row[startSym:end] {
		total += int(e)
	}
	ber := float64(total) / float64((end-startSym)*tr.BitsPerSym)
	return ber <= thr, nil
}

// MeanBER returns the whole-trace BER for one location and scheme — the
// bars of Fig. 14.
func (m *Model) MeanBER(locID int, est Estimation) (float64, error) {
	byScheme, ok := m.traces[locID]
	if !ok {
		return 0, fmt.Errorf("trace: unknown location %d", locID)
	}
	tr, ok := byScheme[est]
	if !ok {
		return 0, fmt.Errorf("trace: no %v trace for location %d", est, locID)
	}
	var total, bits int
	for _, row := range tr.Errors {
		for _, e := range row {
			total += int(e)
			bits += tr.BitsPerSym
		}
	}
	if bits == 0 {
		return 0, nil
	}
	return float64(total) / float64(bits), nil
}
