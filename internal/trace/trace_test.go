package trace

import (
	"testing"

	"carpool/internal/channel"
	"carpool/internal/fec"
	"carpool/internal/phy"
)

// testConfig keeps trace collection fast in unit tests.
func testConfig() Config {
	return Config{Power: 0.2, MCS: phy.MCS48, NumSymbols: 80, Trials: 4}
}

func nearLocation() channel.Location {
	return channel.Location{ID: 3, X: 6.5, Y: 6.5} // ~2.1 m from the AP
}

func TestEstimationString(t *testing.T) {
	if Standard.String() != "standard" || RTE.String() != "RTE" {
		t.Error("wrong names")
	}
	if Estimation(7).String() != "Estimation(7)" {
		t.Error("wrong fallback")
	}
}

func TestCollectShapes(t *testing.T) {
	tr, err := Collect(nearLocation(), Standard, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Errors) != 4 {
		t.Fatalf("%d trials", len(tr.Errors))
	}
	if tr.BitsPerSym != 288 {
		t.Errorf("bits per symbol %d", tr.BitsPerSym)
	}
	for _, row := range tr.Errors {
		if len(row) < 80 {
			t.Fatalf("trace row only %d symbols", len(row))
		}
		for _, e := range row {
			if int(e) > tr.BitsPerSym {
				t.Fatal("impossible error count")
			}
		}
	}
	ber := tr.MeanBERBySymbol()
	if len(ber) != len(tr.Errors[0]) {
		t.Error("BER curve length mismatch")
	}
}

func TestCollectValidation(t *testing.T) {
	cfg := testConfig()
	cfg.MCS = phy.MCS{}
	if _, err := Collect(nearLocation(), Standard, cfg); err == nil {
		t.Error("accepted invalid MCS")
	}
	if _, err := Collect(nearLocation(), Estimation(0), testConfig()); err == nil {
		t.Error("accepted invalid estimation scheme")
	}
}

func TestRTETraceBeatsStandardAtTail(t *testing.T) {
	cfg := testConfig()
	cfg.Trials = 8
	cfg.NumSymbols = 140
	loc := nearLocation()
	std, err := Collect(loc, Standard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rte, err := Collect(loc, RTE, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tail := func(tr *Trace) float64 {
		curve := tr.MeanBERBySymbol()
		var sum float64
		n := len(curve)
		for _, v := range curve[3*n/4:] {
			sum += v
		}
		return sum / float64(n-3*n/4)
	}
	if tail(rte) >= tail(std) && tail(std) > 1e-5 {
		t.Errorf("RTE tail BER %.2e not better than standard %.2e", tail(rte), tail(std))
	}
}

func TestModelSubframeOK(t *testing.T) {
	locs := []channel.Location{nearLocation(), {ID: 9, X: 1.0, Y: 1.2}}
	m, err := NewModel(locs, testConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSymbols() != 80 {
		t.Errorf("NumSymbols %d", m.NumSymbols())
	}
	if len(m.Locations()) != 2 {
		t.Errorf("%d locations", len(m.Locations()))
	}
	// Near location, short frame at the head: should essentially always
	// survive.
	okCount := 0
	for i := 0; i < 100; i++ {
		ok, err := m.SubframeOK(3, RTE, 0, 4, fec.Rate2_3)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			okCount++
		}
	}
	if okCount < 90 {
		t.Errorf("near head subframe survived only %d/100", okCount)
	}
	// Unknown location and malformed spans error out.
	if _, err := m.SubframeOK(77, RTE, 0, 4, fec.Rate2_3); err == nil {
		t.Error("accepted unknown location")
	}
	if _, err := m.SubframeOK(3, Estimation(5), 0, 4, fec.Rate2_3); err == nil {
		t.Error("accepted unknown scheme")
	}
	if _, err := m.SubframeOK(3, RTE, 0, 0, fec.Rate2_3); err == nil {
		t.Error("accepted empty span")
	}
	if _, err := m.SubframeOK(3, RTE, 0, 4, fec.CodeRate(9)); err == nil {
		t.Error("accepted unknown rate")
	}
	// Spans beyond the trace length are clamped into the tail, not errors.
	if _, err := m.SubframeOK(3, RTE, 70, 40, fec.Rate2_3); err != nil {
		t.Errorf("overlong span rejected: %v", err)
	}
}

func TestModelMeanBER(t *testing.T) {
	locs := []channel.Location{nearLocation()}
	m, err := NewModel(locs, testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	std, err := m.MeanBER(3, Standard)
	if err != nil {
		t.Fatal(err)
	}
	rte, err := m.MeanBER(3, RTE)
	if err != nil {
		t.Fatal(err)
	}
	if std < 0 || std > 0.5 || rte < 0 || rte > 0.5 {
		t.Errorf("implausible BERs: std %.2e rte %.2e", std, rte)
	}
	if _, err := m.MeanBER(42, Standard); err == nil {
		t.Error("accepted unknown location")
	}
}

func TestFarLocationWorseThanNear(t *testing.T) {
	cfg := testConfig()
	near := channel.Location{ID: 1, X: 5.8, Y: 6.2} // ~1.4 m
	far := channel.Location{ID: 2, X: 0.6, Y: 0.8}  // ~6.1 m
	cfg.Power = 0.05                                // lower power separates them
	trNear, err := Collect(near, Standard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trFar, err := Collect(far, Standard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(tr *Trace) float64 {
		var sum float64
		curve := tr.MeanBERBySymbol()
		for _, v := range curve {
			sum += v
		}
		return sum / float64(len(curve))
	}
	if mean(trFar) <= mean(trNear) {
		t.Errorf("far BER %.2e not worse than near %.2e", mean(trFar), mean(trNear))
	}
}
