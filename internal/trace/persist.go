package trace

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// The trace collection step runs the full PHY simulator thousands of times;
// Save/Load let the MAC tools cache it on disk, mirroring how the paper's
// USRP traces were recorded once and replayed many times.

// persistedModel is the on-disk representation.
type persistedModel struct {
	Version int
	Cfg     Config
	Traces  map[int]map[Estimation]*Trace
}

const persistVersion = 1

// Save writes the model's traces to w.
func (m *Model) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(persistedModel{
		Version: persistVersion,
		Cfg:     m.cfg,
		Traces:  m.traces,
	})
}

// SaveFile writes the model's traces to a file, creating parent
// directories.
func (m *Model) SaveFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("trace: creating cache directory: %w", err)
	}
	f, err := os.CreateTemp(filepath.Dir(path), ".trace-*")
	if err != nil {
		return fmt.Errorf("trace: creating cache file: %w", err)
	}
	defer os.Remove(f.Name())
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}

// Load reads a model saved by Save. The replay RNG is seeded fresh.
func Load(r io.Reader, seed int64) (*Model, error) {
	var p persistedModel
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("trace: decoding cache: %w", err)
	}
	if p.Version != persistVersion {
		return nil, fmt.Errorf("trace: cache version %d, want %d", p.Version, persistVersion)
	}
	if len(p.Traces) == 0 {
		return nil, fmt.Errorf("trace: cache holds no traces")
	}
	m := newEmptyModel(p.Cfg, seed)
	m.traces = p.Traces
	return m, nil
}

// LoadFile reads a model saved by SaveFile.
func LoadFile(path string, seed int64) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, seed)
}
