package trace

import (
	"bytes"
	"path/filepath"
	"testing"

	"carpool/internal/channel"
	"carpool/internal/fec"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	locs := []channel.Location{nearLocation()}
	m, err := NewModel(locs, testConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, 7)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumSymbols() != m.NumSymbols() {
		t.Errorf("NumSymbols %d, want %d", loaded.NumSymbols(), m.NumSymbols())
	}
	// Identical traces: the same seeded replay gives the same verdicts.
	for i := 0; i < 50; i++ {
		a, err := m.SubframeOK(3, Standard, 60, 10, fec.Rate2_3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.SubframeOK(3, Standard, 60, 10, fec.Rate2_3)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatal("loaded model replays differently with the same seed")
		}
	}
	// Mean BER must match exactly.
	ma, err := m.MeanBER(3, RTE)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := loaded.MeanBER(3, RTE)
	if err != nil {
		t.Fatal(err)
	}
	if ma != mb {
		t.Errorf("mean BER %v vs %v", ma, mb)
	}
}

func TestSaveLoadFile(t *testing.T) {
	locs := []channel.Location{nearLocation()}
	m, err := NewModel(locs, testConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cache", "traces.gob")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Locations()) != 1 {
		t.Error("locations lost")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gob"), 1); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob")), 1); err == nil {
		t.Error("garbage accepted")
	}
	var empty bytes.Buffer
	if _, err := Load(&empty, 1); err == nil {
		t.Error("empty stream accepted")
	}
}
