package experiments

import (
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"carpool/internal/obs"
)

func TestMetricsSidecar(t *testing.T) {
	sink := &obs.Sink{Registry: obs.NewRegistry()}
	obs.Enable(sink)
	defer obs.Disable()

	sink.Registry.Counter("phy.symbols_decoded").Add(7)
	pre := obsSnapshot()
	sink.Registry.Counter("phy.symbols_decoded").Add(5)
	sink.Registry.Counter("mac.collisions").Add(3)

	dir := t.TempDir()
	if err := writeMetricsSidecar(dir, "fig99_test.csv", pre); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig99_test.metrics.json"))
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	// The sidecar holds the delta since pre, not absolute totals.
	if got := snap.Counters["phy.symbols_decoded"]; got != 5 {
		t.Errorf("phy.symbols_decoded delta = %d, want 5", got)
	}
	if got := snap.Counters["mac.collisions"]; got != 3 {
		t.Errorf("mac.collisions delta = %d, want 3", got)
	}
}

func TestMetricsSidecarDisabledIsNoop(t *testing.T) {
	obs.Disable()
	dir := t.TempDir()
	if err := writeMetricsSidecar(dir, "fig99_test.csv", obsSnapshot()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig99_test.metrics.json")); !os.IsNotExist(err) {
		t.Errorf("sidecar written with observation off (stat err: %v)", err)
	}
}

func TestExportPHYCSVs(t *testing.T) {
	if testing.Short() {
		t.Skip("PHY sweeps")
	}
	dir := t.TempDir()
	if err := ExportPHYCSVs(dir, Quick); err != nil {
		t.Fatal(err)
	}
	wantFiles := map[string]int{ // file -> minimum data rows
		"fig3_ber_bias.csv":                 100,
		"fig11_sidechannel_impact.csv":      20,
		"fig12_sidechannel_reliability.csv": 10,
		"fig13_rte_bias.csv":                100,
		"fig14_rte_modulations.csv":         8,
	}
	for name, minRows := range wantFiles {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		records, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(records) < minRows+1 {
			t.Errorf("%s: %d rows, want >= %d", name, len(records)-1, minRows)
		}
		// Rectangular: every row matches the header width.
		for i, rec := range records {
			if len(rec) != len(records[0]) {
				t.Errorf("%s row %d: %d fields, header has %d", name, i, len(rec), len(records[0]))
				break
			}
		}
	}
}

func TestExportMACCSVs(t *testing.T) {
	if testing.Short() {
		t.Skip("MAC sweeps")
	}
	lab, err := NewMACLab(Quick)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := lab.ExportMACCSVs(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig15_voip.csv", "fig16_background.csv",
		"fig17a_latency.csv", "fig17b_framesize.csv",
	} {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		records, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(records) < 3 {
			t.Errorf("%s: only %d rows", name, len(records))
		}
	}
}

func TestMACLabCacheRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("trace collection")
	}
	cache := filepath.Join(t.TempDir(), "traces.gob")
	a, err := NewMACLabWithCache(Quick, cache)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cache); err != nil {
		t.Fatalf("cache not written: %v", err)
	}
	// Second construction loads from disk and produces identical sweeps.
	b, err := NewMACLabWithCache(Quick, cache)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.Fig17a()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Fig17a()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("cached lab diverged at row %d: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}
