package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"carpool/internal/obs"
)

// WriteCSV dumps one figure's rows as a CSV file under dir, for plotting.
// The header matches the paper's axes.
func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: creating CSV directory: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// obsSnapshot captures the enabled registry's state before one figure runs;
// it returns a zero snapshot (and writeMetricsSidecar a no-op) when
// observation is off.
func obsSnapshot() obs.Snapshot {
	if sink := obs.Active(); sink != nil && sink.Registry != nil {
		return sink.Registry.Snapshot()
	}
	return obs.Snapshot{}
}

// writeMetricsSidecar attributes the registry delta since before to one
// figure and writes it as <csvName minus .csv>.metrics.json next to the
// figure's CSV. With observation off it does nothing.
func writeMetricsSidecar(dir, csvName string, before obs.Snapshot) error {
	sink := obs.Active()
	if sink == nil || sink.Registry == nil {
		return nil
	}
	diff := sink.Registry.Snapshot().Diff(before)
	name := strings.TrimSuffix(csvName, ".csv") + ".metrics.json"
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("experiments: metrics sidecar: %w", err)
	}
	defer f.Close()
	return diff.WriteJSON(f)
}

// ExportPHYCSVs regenerates the PHY figures and writes one CSV per figure
// into dir.
func ExportPHYCSVs(dir string, scale Scale) error {
	pre := obsSnapshot()
	fig3, err := Fig3(scale)
	if err != nil {
		return err
	}
	rows := make([][]string, 0, len(fig3))
	for _, r := range fig3 {
		rows = append(rows, []string{strconv.Itoa(r.SymbolIndex), ftoa(r.BER)})
	}
	if err := writeCSV(dir, "fig3_ber_bias.csv", []string{"symbol", "ber"}, rows); err != nil {
		return err
	}
	if err := writeMetricsSidecar(dir, "fig3_ber_bias.csv", pre); err != nil {
		return err
	}

	pre = obsSnapshot()
	fig11, err := Fig11(scale)
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, r := range fig11 {
		rows = append(rows, []string{
			r.Modulation.String(), ftoa(r.Power), ftoa(r.BERStandard), ftoa(r.BERSideChan),
		})
	}
	if err := writeCSV(dir, "fig11_sidechannel_impact.csv",
		[]string{"modulation", "power", "ber_standard", "ber_sidechannel"}, rows); err != nil {
		return err
	}
	if err := writeMetricsSidecar(dir, "fig11_sidechannel_impact.csv", pre); err != nil {
		return err
	}

	pre = obsSnapshot()
	fig12, err := Fig12(scale)
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, r := range fig12 {
		rows = append(rows, []string{
			r.Alphabet.String(), ftoa(r.Power), ftoa(r.SideBER), ftoa(r.DataBER),
		})
	}
	if err := writeCSV(dir, "fig12_sidechannel_reliability.csv",
		[]string{"alphabet", "power", "side_ber", "data_ber"}, rows); err != nil {
		return err
	}
	if err := writeMetricsSidecar(dir, "fig12_sidechannel_reliability.csv", pre); err != nil {
		return err
	}

	pre = obsSnapshot()
	fig13, err := Fig13(scale)
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, r := range fig13 {
		rows = append(rows, []string{
			r.Modulation.String(), strconv.Itoa(r.SymbolIndex),
			ftoa(r.BERStandard), ftoa(r.BERRTE),
		})
	}
	if err := writeCSV(dir, "fig13_rte_bias.csv",
		[]string{"modulation", "symbol", "ber_standard", "ber_rte"}, rows); err != nil {
		return err
	}
	if err := writeMetricsSidecar(dir, "fig13_rte_bias.csv", pre); err != nil {
		return err
	}

	pre = obsSnapshot()
	fig14, err := Fig14(scale)
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, r := range fig14 {
		rows = append(rows, []string{
			ftoa(r.Power), r.Modulation.String(), ftoa(r.BERStandard), ftoa(r.BERRTE),
		})
	}
	if err := writeCSV(dir, "fig14_rte_modulations.csv",
		[]string{"power", "modulation", "ber_standard", "ber_rte"}, rows); err != nil {
		return err
	}
	return writeMetricsSidecar(dir, "fig14_rte_modulations.csv", pre)
}

// ExportMACCSVs regenerates the MAC figures and writes one CSV per figure
// into dir.
func (l *MACLab) ExportMACCSVs(dir string) error {
	pre := obsSnapshot()
	fig15, err := l.Fig15()
	if err != nil {
		return err
	}
	dump := func(name string, macRows []MACRow) error {
		rows := make([][]string, 0, len(macRows))
		for _, r := range macRows {
			rows = append(rows, []string{
				strconv.Itoa(r.NumSTAs), r.Protocol.String(),
				ftoa(r.GoodputMbps), ftoa(r.MeanDelay.Seconds() * 1e3),
			})
		}
		return writeCSV(dir, name, []string{"stas", "protocol", "goodput_mbps", "delay_ms"}, rows)
	}
	if err := dump("fig15_voip.csv", fig15); err != nil {
		return err
	}
	if err := writeMetricsSidecar(dir, "fig15_voip.csv", pre); err != nil {
		return err
	}
	pre = obsSnapshot()
	fig16, err := l.Fig16()
	if err != nil {
		return err
	}
	if err := dump("fig16_background.csv", fig16); err != nil {
		return err
	}
	if err := writeMetricsSidecar(dir, "fig16_background.csv", pre); err != nil {
		return err
	}

	pre = obsSnapshot()
	fig17a, err := l.Fig17a()
	if err != nil {
		return err
	}
	rows := make([][]string, 0, len(fig17a))
	for _, r := range fig17a {
		rows = append(rows, []string{
			strconv.Itoa(int(r.MaxLatency / time.Millisecond)),
			ftoa(r.Carpool), ftoa(r.AMPDU), ftoa(r.Gain),
		})
	}
	if err := writeCSV(dir, "fig17a_latency.csv",
		[]string{"latency_ms", "carpool_mbps", "ampdu_mbps", "gain"}, rows); err != nil {
		return err
	}
	if err := writeMetricsSidecar(dir, "fig17a_latency.csv", pre); err != nil {
		return err
	}

	pre = obsSnapshot()
	fig17b, err := l.Fig17b()
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, r := range fig17b {
		rows = append(rows, []string{
			strconv.Itoa(r.FrameBytes), ftoa(r.Carpool), ftoa(r.AMPDU), ftoa(r.Legacy),
		})
	}
	if err := writeCSV(dir, "fig17b_framesize.csv",
		[]string{"frame_bytes", "carpool_mbps", "ampdu_mbps", "legacy_mbps"}, rows); err != nil {
		return err
	}
	return writeMetricsSidecar(dir, "fig17b_framesize.csv", pre)
}
