package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"carpool/internal/channel"
	"carpool/internal/mac"
	"carpool/internal/phy"
	"carpool/internal/trace"
	"carpool/internal/traffic"
)

// MACLab owns the expensive trace-driven delivery oracle and runs the MAC
// figures against it. Build it once and reuse across figures.
type MACLab struct {
	scale  Scale
	oracle mac.DeliveryOracle
	locIDs []int
	dur    time.Duration
}

// NewMACLab collects PHY decode traces for a set of office locations
// (§7.2.1's offline step) and returns a lab ready to run Figs. 15-17.
func NewMACLab(scale Scale) (*MACLab, error) {
	return NewMACLabWithCache(scale, "")
}

// NewMACLabWithCache is NewMACLab with an optional on-disk trace cache:
// when cachePath names a readable file the traces load from it; otherwise
// they are collected and, if cachePath is nonempty, saved there.
func NewMACLabWithCache(scale Scale, cachePath string) (*MACLab, error) {
	nLocs, trials := 6, 8
	dur := 5 * time.Second
	if scale == Full {
		nLocs, trials = 30, 20
		dur = 20 * time.Second
	}
	locs := channel.OfficeLocations()[:nLocs]

	const traceSeed = 77
	var model *trace.Model
	if cachePath != "" {
		if m, err := trace.LoadFile(cachePath, traceSeed); err == nil {
			model = m
		}
	}
	if model == nil {
		// CoherenceSymbols 500 corresponds to the fast end of the paper's
		// "tens of milliseconds" indoor coherence band (an 8 ms aggregate
		// spans a quarter of the coherence time) — the regime where long
		// frames need RTE to stay decodable.
		m, err := trace.NewModel(locs, trace.Config{
			Power: 0.2, MCS: phy.MCS48, NumSymbols: 168, Trials: trials,
			CoherenceSymbols: 500,
		}, traceSeed)
		if err != nil {
			return nil, err
		}
		if cachePath != "" {
			if err := m.SaveFile(cachePath); err != nil {
				return nil, err
			}
		}
		model = m
	}
	// Retries happen within one channel coherence epoch: hold each
	// location's replayed reception for a stretch of queries.
	model.SetTrialHold(25)
	ids := make([]int, len(locs))
	for i, l := range locs {
		ids[i] = l.ID
	}
	return &MACLab{
		scale:  scale,
		oracle: &mac.TraceOracle{Model: model},
		locIDs: ids,
		dur:    dur,
	}, nil
}

// staLocations assigns each station a trace location round-robin.
func (l *MACLab) staLocations(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = l.locIDs[i%len(l.locIDs)]
	}
	return out
}

// voipDownlink builds per-STA downlink VoIP at peak rate (96 kbit/s in
// 120-byte frames). The paper's goodput magnitudes (up to ~2.9 Mbit/s at 30
// STAs) correspond to every stream at its peak rate, so the sweep drives
// the ON-period rate continuously; see EXPERIMENTS.md for the discussion.
func (l *MACLab) voipDownlink(n int, seed int64) [][]traffic.Arrival {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]traffic.Arrival, n)
	for i := range out {
		out[i] = traffic.CBRFlow(rng, traffic.VoIPFrameBytes, traffic.VoIPFrameInterval, l.dur)
	}
	return out
}

// backgroundUplink builds per-STA TCP+UDP background streams matching the
// SIGCOMM'08 statistics (§7.2.2).
func (l *MACLab) backgroundUplink(n int, seed int64) ([][]traffic.Arrival, error) {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]traffic.Arrival, n)
	for i := range out {
		tcp, err := traffic.BackgroundFlow(rng, traffic.TCP, l.dur)
		if err != nil {
			return nil, err
		}
		udp, err := traffic.BackgroundFlow(rng, traffic.UDP, l.dur)
		if err != nil {
			return nil, err
		}
		out[i] = traffic.Merge(tcp, udp)
	}
	return out, nil
}

// STACounts returns the station sweep for the lab's scale.
func (l *MACLab) STACounts() []int {
	if l.scale == Full {
		return []int{10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30}
	}
	return []int{10, 14, 18, 22, 26, 30}
}

// MACRow is one protocol's result at one operating point.
type MACRow struct {
	Protocol    mac.Protocol
	NumSTAs     int
	GoodputMbps float64
	MeanDelay   time.Duration
}

// runPoint executes one protocol at one configuration.
func (l *MACLab) runPoint(p mac.Protocol, n int, seed int64, background bool,
	maxLatency time.Duration, down [][]traffic.Arrival) (MACRow, error) {
	cfg := mac.Config{
		Protocol:        p,
		NumSTAs:         n,
		Duration:        l.dur,
		Seed:            seed,
		Downlink:        down,
		Oracle:          l.oracle,
		STALocations:    l.staLocations(n),
		SaturatedUplink: true,
		MaxLatency:      maxLatency,
	}
	if background {
		up, err := l.backgroundUplink(n, seed^0xbac)
		if err != nil {
			return MACRow{}, err
		}
		cfg.Uplink = up
		// Background mix includes MTU-sized frames, so the saturation
		// filler uses a mid-sized frame rather than a VoIP one.
		cfg.UplinkSaturationBytes = 400
	}
	res, err := mac.Run(cfg)
	if err != nil {
		return MACRow{}, err
	}
	return MACRow{
		Protocol: p, NumSTAs: n,
		GoodputMbps: res.DownlinkGoodputMbps, MeanDelay: res.MeanDelay,
	}, nil
}

// Run executes one protocol against custom downlink traffic using the
// lab's trace oracle and saturated uplink contention, returning the full
// simulation result. Examples and ablations use this directly.
func (l *MACLab) Run(p mac.Protocol, n int, down [][]traffic.Arrival) (*mac.Result, error) {
	return mac.Run(mac.Config{
		Protocol:        p,
		NumSTAs:         n,
		Duration:        l.dur,
		Seed:            int64(p)*1009 + int64(n),
		Downlink:        down,
		Oracle:          l.oracle,
		STALocations:    l.staLocations(n),
		SaturatedUplink: true,
	})
}

// Duration returns the lab's simulated time per run.
func (l *MACLab) Duration() time.Duration { return l.dur }

// Fig15 sweeps VoIP goodput and delay over the station count for all five
// protocols (no background traffic).
func (l *MACLab) Fig15() ([]MACRow, error) {
	return l.sweepSTAs(false, 15)
}

// Fig16 repeats the sweep with SIGCOMM'08 TCP/UDP uplink background
// traffic.
func (l *MACLab) Fig16() ([]MACRow, error) {
	return l.sweepSTAs(true, 16)
}

func (l *MACLab) sweepSTAs(background bool, seed int64) ([]MACRow, error) {
	var rows []MACRow
	for _, n := range l.STACounts() {
		down := l.voipDownlink(n, seed*1000+int64(n))
		for _, p := range mac.AllProtocols() {
			row, err := l.runPoint(p, n, seed*100+int64(n)*10+int64(p), background, 0, down)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FairnessRow reports a protocol's Jain index at one crowd size.
type FairnessRow struct {
	Protocol      mac.Protocol
	NumSTAs       int
	FairnessIndex float64
	GoodputMbps   float64
}

// Fairness runs the §8 fairness check: with identical offered traffic per
// station, FIFO-scheduled Carpool should spread goodput evenly (Jain index
// near 1) even while multiplying the aggregate.
func (l *MACLab) Fairness() ([]FairnessRow, error) {
	const n = 30
	down := l.voipDownlink(n, 88)
	var rows []FairnessRow
	for _, p := range mac.AllProtocols() {
		res, err := l.Run(p, n, down)
		if err != nil {
			return nil, err
		}
		rows = append(rows, FairnessRow{
			Protocol: p, NumSTAs: n,
			FairnessIndex: res.FairnessIndex,
			GoodputMbps:   res.DownlinkGoodputMbps,
		})
	}
	return rows, nil
}

// PrintFairness renders the fairness study.
func (l *MACLab) PrintFairness(w io.Writer) error {
	rows, err := l.Fairness()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "§8 — downlink fairness across stations (Jain index, 30 STAs, equal offered load)")
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{
			r.Protocol.String(),
			fmt.Sprintf("%.3f", r.FairnessIndex),
			fmt.Sprintf("%.2f", r.GoodputMbps),
		})
	}
	printTable(w, []string{"protocol", "Jain index", "goodput (Mbit/s)"}, table)
	return nil
}

// Fig17aRow compares Carpool and A-MPDU under a latency requirement.
type Fig17aRow struct {
	MaxLatency time.Duration
	Carpool    float64
	AMPDU      float64
	Gain       float64
}

// Fig17a fixes 30 stations with background traffic and sweeps the VoIP
// latency requirement from 10 to 200 ms.
func (l *MACLab) Fig17a() ([]Fig17aRow, error) {
	const n = 30
	var rows []Fig17aRow
	for _, lat := range []time.Duration{
		10 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
		150 * time.Millisecond, 200 * time.Millisecond,
	} {
		down := l.voipDownlink(n, 1700+int64(lat))
		cp, err := l.runPoint(mac.Carpool, n, 171+int64(lat), true, lat, down)
		if err != nil {
			return nil, err
		}
		am, err := l.runPoint(mac.AMPDU, n, 172+int64(lat), true, lat, down)
		if err != nil {
			return nil, err
		}
		gain := 0.0
		if am.GoodputMbps > 0 {
			gain = cp.GoodputMbps / am.GoodputMbps
		}
		rows = append(rows, Fig17aRow{
			MaxLatency: lat, Carpool: cp.GoodputMbps, AMPDU: am.GoodputMbps, Gain: gain,
		})
	}
	return rows, nil
}

// Fig17bRow compares goodput across downlink frame sizes.
type Fig17bRow struct {
	FrameBytes int
	Carpool    float64
	AMPDU      float64
	Legacy     float64
}

// Fig17b fixes 30 stations and a 10 ms latency requirement and sweeps the
// downlink frame size from 100 to 1500 bytes.
func (l *MACLab) Fig17b() ([]Fig17bRow, error) {
	const n = 30
	const lat = 10 * time.Millisecond
	var rows []Fig17bRow
	for _, size := range []int{100, 200, 400, 800, 1500} {
		rng := rand.New(rand.NewSource(int64(size)))
		down := make([][]traffic.Arrival, n)
		for i := range down {
			down[i] = traffic.CBRFlow(rng, size, 10*time.Millisecond, l.dur)
		}
		row := Fig17bRow{FrameBytes: size}
		for _, p := range []mac.Protocol{mac.Carpool, mac.AMPDU, mac.Legacy80211} {
			r, err := l.runPoint(p, n, int64(size)*10+int64(p), true, lat, down)
			if err != nil {
				return nil, err
			}
			switch p {
			case mac.Carpool:
				row.Carpool = r.GoodputMbps
			case mac.AMPDU:
				row.AMPDU = r.GoodputMbps
			default:
				row.Legacy = r.GoodputMbps
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig15 renders the VoIP sweep.
func (l *MACLab) PrintFig15(w io.Writer) error {
	rows, err := l.Fig15()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig. 15 — VoIP downlink goodput and delay vs number of STAs")
	return printMACRows(w, rows)
}

// PrintFig16 renders the background-traffic sweep.
func (l *MACLab) PrintFig16(w io.Writer) error {
	rows, err := l.Fig16()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig. 16 — goodput and delay with TCP/UDP uplink background traffic")
	return printMACRows(w, rows)
}

func printMACRows(w io.Writer, rows []MACRow) error {
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{
			fmt.Sprintf("%d", r.NumSTAs), r.Protocol.String(),
			fmt.Sprintf("%.2f", r.GoodputMbps),
			fmt.Sprintf("%.0f", r.MeanDelay.Seconds()*1e3),
		})
	}
	printTable(w, []string{"STAs", "protocol", "goodput (Mbit/s)", "delay (ms)"}, table)
	return nil
}

// PrintFig17a renders the latency-requirement sweep.
func (l *MACLab) PrintFig17a(w io.Writer) error {
	rows, err := l.Fig17a()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig. 17a — goodput vs latency requirement (30 STAs)")
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{
			fmt.Sprintf("%d", int(r.MaxLatency.Milliseconds())),
			fmt.Sprintf("%.2f", r.Carpool), fmt.Sprintf("%.2f", r.AMPDU),
			fmt.Sprintf("%.1fx", r.Gain),
		})
	}
	printTable(w, []string{"latency (ms)", "Carpool", "A-MPDU", "gain"}, table)
	return nil
}

// PrintFig17b renders the frame-size sweep.
func (l *MACLab) PrintFig17b(w io.Writer) error {
	rows, err := l.Fig17b()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig. 17b — goodput vs frame size (30 STAs, 10 ms latency bound)")
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{
			fmt.Sprintf("%d", r.FrameBytes),
			fmt.Sprintf("%.2f", r.Carpool), fmt.Sprintf("%.2f", r.AMPDU),
			fmt.Sprintf("%.2f", r.Legacy),
		})
	}
	printTable(w, []string{"frame (B)", "Carpool", "A-MPDU", "802.11"}, table)
	return nil
}
