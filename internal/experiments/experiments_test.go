package experiments

import (
	"bytes"
	"strings"
	"testing"

	"carpool/internal/mac"
	"carpool/internal/modem"
	"carpool/internal/sidechannel"
)

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("wrong names")
	}
	if Scale(9).String() != "Scale(9)" {
		t.Error("wrong fallback")
	}
}

func TestPrintTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	printTable(&buf, []string{"a", "bbbb"}, [][]string{{"xxxxx", "y"}})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
	// The second column must start at the same offset in both lines.
	if strings.Index(lines[0], "bbbb") != strings.Index(lines[1], "y") {
		t.Error("columns not aligned")
	}
}

func TestFmtBER(t *testing.T) {
	if got := fmtBER(0, 0); got != "n/a" {
		t.Errorf("got %q", got)
	}
	if got := fmtBER(0, 1000); got != "<1.0e-03" {
		t.Errorf("got %q", got)
	}
	if got := fmtBER(0.0123, 10); got != "1.23e-02" {
		t.Errorf("got %q", got)
	}
}

func TestFig1MatchesPaperStatistics(t *testing.T) {
	stats := Fig1()
	if len(stats) != 2 {
		t.Fatal("expected two traces")
	}
	lib := stats[0]
	if lib.DownlinkRatio < 0.85 || lib.DownlinkRatio > 0.93 {
		t.Errorf("library downlink ratio %.3f, want ~0.892", lib.DownlinkRatio)
	}
	if lib.ShortFrameFraction < 0.4 {
		t.Errorf("short-frame fraction %.2f too low", lib.ShortFrameFraction)
	}
	sig := stats[1]
	if sig.DownlinkRatio < 0.80 || sig.DownlinkRatio > 0.87 {
		t.Errorf("SIGCOMM downlink ratio %.3f, want ~0.834", sig.DownlinkRatio)
	}
}

func TestFig3ShowsBERBias(t *testing.T) {
	if testing.Short() {
		t.Skip("PHY sweep")
	}
	rows, err := Fig3(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 100 {
		t.Fatalf("only %d symbol rows", len(rows))
	}
	n := len(rows)
	head, tail := meanRows(rows[:n/4]), meanRows(rows[3*n/4:])
	if tail < 3*head {
		t.Errorf("no BER bias: head %.2e, tail %.2e", head, tail)
	}
	if tail < 1e-4 || tail > 5e-2 {
		t.Errorf("tail BER %.2e outside the paper's decade band", tail)
	}
}

func meanRows(rows []Fig3Row) float64 {
	var s float64
	for _, r := range rows {
		s += r.BER
	}
	return s / float64(len(rows))
}

func TestFig11SideChannelHarmless(t *testing.T) {
	if testing.Short() {
		t.Skip("PHY sweep")
	}
	rows, err := Fig11(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 { // 4 modulations x 5 powers
		t.Fatalf("%d rows", len(rows))
	}
	// Where the BER is measurable, the side channel's relative impact must
	// stay small (the paper reports 1.02%..5.49%; sampling noise at Quick
	// scale warrants a loose bound).
	for _, r := range rows {
		if r.BERStandard > 1e-3 && r.RelativeDelta > 0.5 {
			t.Errorf("%v at power %.4f: relative impact %.0f%%",
				r.Modulation, r.Power, 100*r.RelativeDelta)
		}
	}
	// BER decreases with power for each modulation.
	for _, mod := range modem.Modulations() {
		var prev float64 = -1
		for _, r := range rows {
			if r.Modulation != mod {
				continue
			}
			if prev >= 0 && r.BERStandard > prev*3+1e-6 {
				t.Errorf("%v: BER not decreasing with power", mod)
			}
			prev = r.BERStandard
		}
	}
}

func TestFig12SideChannelBeatsData(t *testing.T) {
	if testing.Short() {
		t.Skip("PHY sweep")
	}
	rows, err := Fig12(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim: the phase-offset channel is more robust than the
	// corresponding PSK data channel in most settings.
	better, comparable := 0, 0
	for _, r := range rows {
		if r.DataBER == 0 && r.SideBER == 0 {
			continue // both below the floor
		}
		comparable++
		if r.SideBER <= r.DataBER {
			better++
		}
	}
	if comparable > 0 && better*2 < comparable {
		t.Errorf("side channel better in only %d/%d settings", better, comparable)
	}
}

func TestFig14RTEWinsAtHighOrderModulations(t *testing.T) {
	if testing.Short() {
		t.Skip("PHY sweep")
	}
	rows, err := Fig14(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 2 powers x 4 modulations
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// RTE needs decodable symbols to mine data pilots from: assert its
		// win only in the workable band. Above ~2e-2 raw BER almost no
		// symbol passes its CRC and RTE degenerates to the standard
		// estimate (±CRC false passes) — the same regime where the paper
		// reports only marginal gains.
		if r.Modulation == modem.QAM64 && r.BERStandard > 1e-4 && r.BERStandard < 2e-2 {
			if r.BERRTE > r.BERStandard {
				t.Errorf("power %.2f QAM64: RTE %.2e worse than standard %.2e",
					r.Power, r.BERRTE, r.BERStandard)
			}
		}
	}
}

func TestGranularityDefaultSchemeCompetitive(t *testing.T) {
	if testing.Short() {
		t.Skip("PHY sweep")
	}
	rows, err := Granularity(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d schemes", len(rows))
	}
	// §5.2: the 2-bit / 1-symbol scheme should be at or near the best tail
	// BER among the six.
	var defaultTail, bestTail float64 = -1, 1
	for _, r := range rows {
		if r.TailBER < bestTail {
			bestTail = r.TailBER
		}
		if r.Scheme == sidechannel.DefaultScheme() {
			defaultTail = r.TailBER
		}
	}
	if defaultTail < 0 {
		t.Fatal("default scheme missing from study")
	}
	if defaultTail > 5*bestTail+1e-4 {
		t.Errorf("default scheme tail BER %.2e far from best %.2e", defaultTail, bestTail)
	}
}

func TestBloomStudyAnalyticVsMeasured(t *testing.T) {
	rows, err := BloomStudy(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		diff := r.MeasuredFP - r.AnalyticFP
		if diff < 0 {
			diff = -diff
		}
		if diff > r.AnalyticFP*0.5+0.005 {
			t.Errorf("n=%d: measured %.4f vs analytic %.4f", r.Receivers, r.MeasuredFP, r.AnalyticFP)
		}
	}
	if rows[7].Overhead != 0.125 {
		t.Errorf("8-receiver overhead %.3f, want 0.125", rows[7].Overhead)
	}
}

func TestEnergyStudyBounds(t *testing.T) {
	rows, err := EnergyStudy()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Receivers == 8 {
			if r.RxOverhead > 0.06 {
				t.Errorf("RX overhead %.4f above the 5.59%% bound", r.RxOverhead)
			}
			if r.NodeOverhead > 0.0035 {
				t.Errorf("node overhead %.4f above the 0.28%% headline", r.NodeOverhead)
			}
		}
		if r.CarpoolOverhearW >= r.LegacyOverhearW {
			t.Error("Carpool overhearing should draw less power than legacy")
		}
	}
}

func TestMACLabFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("trace collection + MAC sweeps")
	}
	lab, err := NewMACLab(Quick)
	if err != nil {
		t.Fatal(err)
	}

	rows, err := lab.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	byProto := func(rows []MACRow, n int, p mac.Protocol) (MACRow, bool) {
		for _, r := range rows {
			if r.NumSTAs == n && r.Protocol == p {
				return r, true
			}
		}
		return MACRow{}, false
	}
	cp, ok1 := byProto(rows, 30, mac.Carpool)
	lg, ok2 := byProto(rows, 30, mac.Legacy80211)
	ams, ok3 := byProto(rows, 30, mac.AMSDU)
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("missing protocols at 30 STAs")
	}
	// The headline claims: Carpool several times 802.11 and the
	// single-receiver aggregation baseline, at far lower delay.
	if cp.GoodputMbps < 5*lg.GoodputMbps {
		t.Errorf("Carpool %.2f not >= 5x 802.11 %.2f", cp.GoodputMbps, lg.GoodputMbps)
	}
	if cp.GoodputMbps < 1.12*ams.GoodputMbps {
		t.Errorf("Carpool %.2f not above A-MSDU %.2f", cp.GoodputMbps, ams.GoodputMbps)
	}
	if cp.MeanDelay*4 > ams.MeanDelay {
		t.Errorf("Carpool delay %v not <= 1/4 of A-MSDU %v", cp.MeanDelay, ams.MeanDelay)
	}
	// Carpool goodput grows with the crowd.
	cp10, _ := byProto(rows, 10, mac.Carpool)
	if cp.GoodputMbps <= cp10.GoodputMbps {
		t.Error("Carpool goodput not increasing with STAs")
	}

	// Fig 17a: gain shrinks as the latency bound loosens, inside the
	// paper's 1.9-9.8x band at the endpoints (loosely).
	arows, err := lab.Fig17a()
	if err != nil {
		t.Fatal(err)
	}
	if len(arows) != 5 {
		t.Fatalf("%d latency points", len(arows))
	}
	first, last := arows[0], arows[len(arows)-1]
	if first.Gain < 2 {
		t.Errorf("gain at 10 ms only %.1fx", first.Gain)
	}
	if last.Gain >= first.Gain {
		t.Errorf("gain did not shrink: %.1fx -> %.1fx", first.Gain, last.Gain)
	}

	// Fig 17b: goodput grows with frame size; Carpool stays on top.
	brows, err := lab.Fig17b()
	if err != nil {
		t.Fatal(err)
	}
	if len(brows) != 5 {
		t.Fatalf("%d size points", len(brows))
	}
	for _, r := range brows {
		if r.Carpool <= r.AMPDU || r.Carpool <= r.Legacy {
			t.Errorf("frame %dB: Carpool %.2f not above baselines (%.2f, %.2f)",
				r.FrameBytes, r.Carpool, r.AMPDU, r.Legacy)
		}
	}
	if brows[4].Carpool <= brows[0].Carpool {
		t.Error("Carpool goodput not growing with frame size")
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	var buf bytes.Buffer
	PrintFig1(&buf)
	if err := PrintTable1(&buf); err != nil {
		t.Fatal(err)
	}
	if err := PrintBloomStudy(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	if err := PrintEnergyStudy(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. 1", "Table 1", "§4.1", "§8"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
