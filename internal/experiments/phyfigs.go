package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"carpool/internal/channel"
	"carpool/internal/core"
	"carpool/internal/modem"
	"carpool/internal/phy"
	"carpool/internal/sidechannel"
	"carpool/internal/sim"
	"carpool/internal/stats"
)

// referenceLocation is the fixed 3 m transmitter-receiver pair used by the
// controlled PHY experiments (Figs. 3, 11, 12).
func referenceLocation() channel.Location {
	return channel.Location{ID: 100, X: 5, Y: 8} // 3 m north of the AP
}

// mcsFor maps a bare modulation to the MCS used in PHY BER experiments
// (coding rate only affects airtime; BER is measured pre-FEC).
func mcsFor(mod modem.Modulation) phy.MCS {
	switch mod {
	case modem.BPSK:
		return phy.MCS6
	case modem.QPSK:
		return phy.MCS12
	case modem.QAM16:
		return phy.MCS24
	default:
		return phy.MCS48
	}
}

// runLink transmits frames over one location's channel and accumulates
// per-symbol coded-bit errors plus side-channel bit errors.
type linkRun struct {
	perSymbol []stats.BERCounter // indexed by symbol position
	data      stats.BERCounter
	side      stats.BERCounter
	lost      int
}

type linkParams struct {
	loc       channel.Location
	power     float64
	mcs       phy.MCS
	payloadB  int
	frames    int
	scheme    *sidechannel.Scheme // nil = standard PHY
	useRTE    bool
	seed      int64
	coherence float64
}

func runLink(p linkParams) (*linkRun, error) {
	chCfg, err := channel.LinkConfig(p.loc, p.power, p.coherence, 400)
	if err != nil {
		return nil, err
	}
	chCfg.Seed ^= p.seed
	if p.coherence == 0 {
		chCfg.CoherenceSymbols = channel.DefaultCoherenceSymbols
	}
	ch, err := channel.New(chCfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.seed*2654435761 + 99))
	payload := make([]byte, p.payloadB)
	out := &linkRun{}
	for f := 0; f < p.frames; f++ {
		rng.Read(payload)
		frame, err := phy.Transmit(payload, phy.TxConfig{MCS: p.mcs, SideChannel: p.scheme})
		if err != nil {
			return nil, err
		}
		var tracker phy.ChannelTracker
		if p.useRTE {
			tracker = core.NewRTETracker()
		}
		res, err := phy.Receive(ch.Transmit(frame.Samples), phy.RxConfig{
			KnownStart: 0, SkipFEC: true, SideChannel: p.scheme, Tracker: tracker,
		})
		if err != nil {
			return nil, err
		}
		if res.Status != phy.StatusOK {
			out.lost++
			continue
		}
		errs, bits := phy.CompareBlocks(frame.Blocks, res.Blocks)
		for i, e := range errs {
			if i >= len(out.perSymbol) {
				out.perSymbol = append(out.perSymbol, make([]stats.BERCounter, i-len(out.perSymbol)+1)...)
			}
			out.perSymbol[i].Add(e, bits)
			out.data.Add(e, bits)
		}
		if p.scheme != nil {
			for i := range frame.SideBits {
				if i >= len(res.SideBits) {
					break
				}
				for j := range frame.SideBits[i] {
					e := 0
					if j >= len(res.SideBits[i]) || res.SideBits[i][j] != frame.SideBits[i][j] {
						e = 1
					}
					out.side.Add(e, 1)
				}
			}
		}
	}
	return out, nil
}

// Fig3Row is one point of the BER-bias curve.
type Fig3Row struct {
	SymbolIndex int
	BER         float64
}

// Fig3 measures the BER bias of long QAM64 frames under the standard
// preamble-only channel estimate (4 KB frames, 3 m link, full TX power).
func Fig3(scale Scale) ([]Fig3Row, error) {
	frames := 40
	if scale == Full {
		frames = 200
	}
	run, err := runLink(linkParams{
		loc: referenceLocation(), power: 0.2, mcs: phy.MCS48,
		payloadB: 4000, frames: frames, seed: 3,
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig3Row, 0, len(run.perSymbol))
	for i := range run.perSymbol {
		rows = append(rows, Fig3Row{SymbolIndex: i + 1, BER: run.perSymbol[i].Rate()})
	}
	return rows, nil
}

// PrintFig3 renders the curve, decimated for readability.
func PrintFig3(w io.Writer, scale Scale) error {
	rows, err := Fig3(scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig. 3 — BER bias in a long frame (QAM64, 4 KB, standard estimation)")
	table := make([][]string, 0, len(rows)/10+1)
	for i := 0; i < len(rows); i += 10 {
		table = append(table, []string{
			fmt.Sprintf("%d", rows[i].SymbolIndex),
			fmt.Sprintf("%.2e", rows[i].BER),
		})
	}
	printTable(w, []string{"symbol", "BER"}, table)
	return nil
}

// Fig11Row compares data BER with and without the side channel.
type Fig11Row struct {
	Modulation    modem.Modulation
	Power         float64
	BERStandard   float64
	BERSideChan   float64
	BitsMeasured  int64
	RelativeDelta float64 // |with - without| / max(without, floor)
}

// Fig11 measures the impact of the phase-offset side channel on data
// decoding across all four modulations and the paper's five power settings.
func Fig11(scale Scale) ([]Fig11Row, error) {
	frames := 30
	if scale == Full {
		frames = 150
	}
	scheme := sidechannel.DefaultScheme()
	var rows []Fig11Row
	for _, mod := range modem.Modulations() {
		for _, power := range channel.PowerMagnitudes {
			base, err := runLink(linkParams{
				loc: referenceLocation(), power: power, mcs: mcsFor(mod),
				payloadB: 1000, frames: frames, seed: 11,
			})
			if err != nil {
				return nil, err
			}
			with, err := runLink(linkParams{
				loc: referenceLocation(), power: power, mcs: mcsFor(mod),
				payloadB: 1000, frames: frames, seed: 11, scheme: &scheme,
			})
			if err != nil {
				return nil, err
			}
			b0, b1 := base.data.Rate(), with.data.Rate()
			den := b0
			if den == 0 {
				den = 1 / float64(base.data.Bits+1)
			}
			rows = append(rows, Fig11Row{
				Modulation: mod, Power: power,
				BERStandard: b0, BERSideChan: b1,
				BitsMeasured:  base.data.Bits,
				RelativeDelta: abs(b1-b0) / den,
			})
		}
	}
	return rows, nil
}

// PrintFig11 renders the comparison.
func PrintFig11(w io.Writer, scale Scale) error {
	rows, err := Fig11(scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig. 11 — data BER: standard PHY vs PHY with phase-offset side channel")
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{
			r.Modulation.String(), fmt.Sprintf("%.4f", r.Power),
			fmtBER(r.BERStandard, r.BitsMeasured), fmtBER(r.BERSideChan, r.BitsMeasured),
		})
	}
	printTable(w, []string{"modulation", "power", "BER w/o side", "BER w/ side"}, table)
	return nil
}

// Fig12Row compares the side channel's own BER against the data channel.
type Fig12Row struct {
	Alphabet sidechannel.Alphabet
	Power    float64
	SideBER  float64
	DataBER  float64 // BPSK data for 1-bit, QPSK data for 2-bit
	SideBits int64
	DataBits int64
}

// Fig12 measures side-channel reliability: 1-bit phase offset vs BPSK data,
// 2-bit phase offset vs QPSK data, across the power sweep (1 KB frames).
func Fig12(scale Scale) ([]Fig12Row, error) {
	frames := 30
	if scale == Full {
		frames = 150
	}
	var rows []Fig12Row
	for _, tt := range []struct {
		alpha sidechannel.Alphabet
		mod   modem.Modulation
	}{
		{sidechannel.OneBit, modem.BPSK},
		{sidechannel.TwoBit, modem.QPSK},
	} {
		scheme := sidechannel.Scheme{Alphabet: tt.alpha, GroupSize: 1}
		for _, power := range channel.PowerMagnitudes {
			run, err := runLink(linkParams{
				loc: referenceLocation(), power: power, mcs: mcsFor(tt.mod),
				payloadB: 1000, frames: frames, seed: 12, scheme: &scheme,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig12Row{
				Alphabet: tt.alpha, Power: power,
				SideBER: run.side.Rate(), DataBER: run.data.Rate(),
				SideBits: run.side.Bits, DataBits: run.data.Bits,
			})
		}
	}
	return rows, nil
}

// PrintFig12 renders the comparison.
func PrintFig12(w io.Writer, scale Scale) error {
	rows, err := Fig12(scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig. 12 — phase-offset side channel BER vs data channel BER")
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{
			r.Alphabet.String(), fmt.Sprintf("%.4f", r.Power),
			fmtBER(r.SideBER, r.SideBits), fmtBER(r.DataBER, r.DataBits),
		})
	}
	printTable(w, []string{"side channel", "power", "side BER", "data BER"}, table)
	return nil
}

// Fig13Row is one per-symbol point comparing estimators.
type Fig13Row struct {
	Modulation  modem.Modulation
	SymbolIndex int
	BERStandard float64
	BERRTE      float64
}

// Fig13 measures per-symbol BER of 4 KB frames decoded with the standard
// estimate vs RTE (QAM64 and QAM16, full power, locations varied).
func Fig13(scale Scale) ([]Fig13Row, error) {
	frames, nLocs := 8, 4
	if scale == Full {
		frames, nLocs = 30, 10
	}
	locs := channel.OfficeLocations()[:nLocs]
	var rows []Fig13Row
	for _, mod := range []modem.Modulation{modem.QAM64, modem.QAM16} {
		var std, rte []stats.BERCounter
		for _, loc := range locs {
			for i, useRTE := range []bool{false, true} {
				run, err := runLink(linkParams{
					loc: loc, power: 0.2, mcs: mcsFor(mod),
					payloadB: 4000, frames: frames, seed: int64(13 + i),
					scheme: schemePtr(), useRTE: useRTE,
				})
				if err != nil {
					return nil, err
				}
				dst := &std
				if useRTE {
					dst = &rte
				}
				for k := range run.perSymbol {
					if k >= len(*dst) {
						*dst = append(*dst, make([]stats.BERCounter, k-len(*dst)+1)...)
					}
					(*dst)[k].Add(int(run.perSymbol[k].Errors), int(run.perSymbol[k].Bits))
				}
			}
		}
		n := min(len(std), len(rte))
		for k := 0; k < n; k++ {
			rows = append(rows, Fig13Row{
				Modulation: mod, SymbolIndex: k + 1,
				BERStandard: std[k].Rate(), BERRTE: rte[k].Rate(),
			})
		}
	}
	return rows, nil
}

func schemePtr() *sidechannel.Scheme {
	s := sidechannel.DefaultScheme()
	return &s
}

// PrintFig13 renders decimated per-symbol curves.
func PrintFig13(w io.Writer, scale Scale) error {
	rows, err := Fig13(scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig. 13 — BER bias: RTE vs standard estimation (4 KB frames, power 0.2)")
	table := make([][]string, 0, len(rows)/10+1)
	for i := 0; i < len(rows); i += 10 {
		r := rows[i]
		table = append(table, []string{
			r.Modulation.String(), fmt.Sprintf("%d", r.SymbolIndex),
			fmt.Sprintf("%.2e", r.BERStandard), fmt.Sprintf("%.2e", r.BERRTE),
		})
	}
	printTable(w, []string{"modulation", "symbol", "standard", "RTE"}, table)
	return nil
}

// Fig14Row compares whole-frame BER across modulations.
type Fig14Row struct {
	Power       float64
	Modulation  modem.Modulation
	BERStandard float64
	BERRTE      float64
	Bits        int64
}

// Fig14 measures whole-frame BER for all modulations at power 0.05 and 0.2
// across office locations, standard vs RTE.
func Fig14(scale Scale) ([]Fig14Row, error) {
	frames, nLocs := 5, 6
	if scale == Full {
		frames, nLocs = 15, 30
	}
	locs := channel.OfficeLocations()[:nLocs]
	var rows []Fig14Row
	for _, power := range []float64{0.05, 0.2} {
		for _, mod := range modem.Modulations() {
			// Fan the (location × estimator) grid across workers: every
			// runLink call is self-seeded and independent, and the counters
			// merge in index order afterwards, so the result is identical to
			// the sequential double loop.
			type cell struct {
				run *linkRun
				err error
			}
			cells := make([]cell, 2*len(locs))
			sim.ParallelFor(len(cells), func(i int) {
				run, err := runLink(linkParams{
					loc: locs[i/2], power: power, mcs: mcsFor(mod),
					payloadB: 2000, frames: frames, seed: 14,
					scheme: schemePtr(), useRTE: i%2 == 1,
				})
				cells[i] = cell{run: run, err: err}
			})
			var std, rte stats.BERCounter
			for i, c := range cells {
				if c.err != nil {
					return nil, c.err
				}
				if i%2 == 1 {
					rte.Add(int(c.run.data.Errors), int(c.run.data.Bits))
				} else {
					std.Add(int(c.run.data.Errors), int(c.run.data.Bits))
				}
			}
			rows = append(rows, Fig14Row{
				Power: power, Modulation: mod,
				BERStandard: std.Rate(), BERRTE: rte.Rate(), Bits: std.Bits,
			})
		}
	}
	return rows, nil
}

// PrintFig14 renders the bars.
func PrintFig14(w io.Writer, scale Scale) error {
	rows, err := Fig14(scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig. 14 — whole-frame BER: RTE vs standard estimation across locations")
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{
			fmt.Sprintf("%.2f", r.Power), r.Modulation.String(),
			fmtBER(r.BERStandard, r.Bits), fmtBER(r.BERRTE, r.Bits),
		})
	}
	printTable(w, []string{"power", "modulation", "standard", "RTE"}, table)
	return nil
}

// GranularityRow scores one §5.2 side-channel scheme.
type GranularityRow struct {
	Scheme sidechannel.Scheme
	// TailBER is the RTE-decoded BER over the last quarter of the frame —
	// lower means the scheme fed the estimator better data pilots.
	TailBER float64
	// SideBER is the side channel's own bit error rate.
	SideBER float64
}

// Granularity reproduces the §5.2 design study: six CRC granularity schemes
// (1-/2-bit alphabets x 1-3 symbol groups) scored by how well RTE performs
// when driven by each scheme. The paper concludes the 2-bit/1-symbol scheme
// wins, and Carpool defaults to it.
func Granularity(scale Scale) ([]GranularityRow, error) {
	frames, nLocs := 6, 4
	if scale == Full {
		frames, nLocs = 20, 10
	}
	locs := channel.OfficeLocations()[:nLocs]
	var rows []GranularityRow
	for _, alpha := range []sidechannel.Alphabet{sidechannel.OneBit, sidechannel.TwoBit} {
		for g := 1; g <= 3; g++ {
			scheme := sidechannel.Scheme{Alphabet: alpha, GroupSize: g}
			var tail, side stats.BERCounter
			for _, loc := range locs {
				run, err := runLink(linkParams{
					loc: loc, power: 0.1, mcs: phy.MCS48,
					payloadB: 3000, frames: frames, seed: 52,
					scheme: &scheme, useRTE: true,
				})
				if err != nil {
					return nil, err
				}
				n := len(run.perSymbol)
				for k := 3 * n / 4; k < n; k++ {
					tail.Add(int(run.perSymbol[k].Errors), int(run.perSymbol[k].Bits))
				}
				side.Add(int(run.side.Errors), int(run.side.Bits))
			}
			rows = append(rows, GranularityRow{Scheme: scheme, TailBER: tail.Rate(), SideBER: side.Rate()})
		}
	}
	return rows, nil
}

// PrintGranularity renders the study.
func PrintGranularity(w io.Writer, scale Scale) error {
	rows, err := Granularity(scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "§5.2 — side-channel CRC granularity study (QAM64, RTE, tail-quarter BER)")
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{
			r.Scheme.String(), fmt.Sprintf("%.2e", r.TailBER), fmt.Sprintf("%.2e", r.SideBER),
		})
	}
	printTable(w, []string{"scheme", "tail BER (RTE)", "side-channel BER"}, table)
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
