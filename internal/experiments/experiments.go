// Package experiments regenerates every table and figure of the paper's
// evaluation: the PHY studies (Figs. 3, 11-14 and the §5.2 granularity
// study), the trace-driven MAC studies (Figs. 15-17), the traffic
// characterization (Fig. 1), and the §4.1/§8 analyses. The cmd/ tools and
// the root benchmark suite are thin wrappers over these functions.
package experiments

import (
	"fmt"
	"io"
)

// Scale trades fidelity for runtime.
type Scale int

// Scales.
const (
	// Quick uses few trials/locations — CI-friendly, minutes-long totals.
	Quick Scale = iota + 1
	// Full approaches the paper's sample sizes.
	Full
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Quick:
		return "quick"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// printTable writes an aligned table: header row then rows.
func printTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s", widths[i]+2, c)
		}
		fmt.Fprintln(w)
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
}

// fmtBER renders a BER, marking values below the measurement floor.
func fmtBER(ber float64, bits int64) string {
	if ber == 0 {
		if bits == 0 {
			return "n/a"
		}
		return fmt.Sprintf("<%.1e", 1/float64(bits))
	}
	return fmt.Sprintf("%.2e", ber)
}
