package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"carpool/internal/bloom"
	"carpool/internal/energy"
	"carpool/internal/sidechannel"
	"carpool/internal/traffic"
)

// Fig1Stats summarizes a synthetic public-WLAN trace against the paper's
// measured statistics.
type Fig1Stats struct {
	Name               string
	MeanActiveSTAs     float64
	DownlinkRatio      float64
	ShortFrameFraction float64 // frames <= 300 bytes
}

// Fig1 generates the library-style and SIGCOMM-style traces and reports
// their aggregate statistics (Fig. 1a-c).
func Fig1() []Fig1Stats {
	lib := traffic.GenerateTrace(traffic.LibraryTraceConfig())
	sig := traffic.GenerateTrace(traffic.SIGCOMM08TraceConfig())
	return []Fig1Stats{
		{
			Name:               "library",
			MeanActiveSTAs:     lib.MeanActiveSTAs(),
			DownlinkRatio:      lib.DownlinkRatio(),
			ShortFrameFraction: lib.ShortFrameFraction(300),
		},
		{
			Name:               "SIGCOMM'08",
			MeanActiveSTAs:     sig.MeanActiveSTAs(),
			DownlinkRatio:      sig.DownlinkRatio(),
			ShortFrameFraction: sig.ShortFrameFraction(300),
		},
	}
}

// PrintFig1 renders the traffic characterization.
func PrintFig1(w io.Writer) {
	fmt.Fprintln(w, "Fig. 1 — synthetic public-WLAN traffic statistics (paper: library 7.63 active, 89.2% downlink; SIGCOMM'08 83.4% downlink, >50% frames < 300 B)")
	rows := make([][]string, 0, 2)
	for _, s := range Fig1() {
		rows = append(rows, []string{
			s.Name,
			fmt.Sprintf("%.2f", s.MeanActiveSTAs),
			fmt.Sprintf("%.1f%%", 100*s.DownlinkRatio),
			fmt.Sprintf("%.1f%%", 100*s.ShortFrameFraction),
		})
	}
	printTable(w, []string{"trace", "mean active STAs", "downlink ratio", "frames<=300B"}, rows)
}

// PrintTable1 renders the phase-offset modulation alphabets.
func PrintTable1(w io.Writer) error {
	fmt.Fprintln(w, "Table 1 — phase offset modulation")
	rows := [][]string{}
	for _, tt := range []struct {
		a    sidechannel.Alphabet
		bits []byte
	}{
		{sidechannel.OneBit, []byte{1}},
		{sidechannel.OneBit, []byte{0}},
		{sidechannel.TwoBit, []byte{1, 1}},
		{sidechannel.TwoBit, []byte{0, 1}},
		{sidechannel.TwoBit, []byte{0, 0}},
		{sidechannel.TwoBit, []byte{1, 0}},
	} {
		phase, err := tt.a.PhaseForBits(tt.bits)
		if err != nil {
			return err
		}
		bits := ""
		for _, b := range tt.bits {
			bits += fmt.Sprintf("%d", b)
		}
		rows = append(rows, []string{
			tt.a.String(), fmt.Sprintf("%+.0f°", phase*180/3.141592653589793), bits,
		})
	}
	printTable(w, []string{"alphabet", "phase offset", "data"}, rows)
	return nil
}

// BloomRow summarizes the §4.1 false-positive analysis for one receiver
// count.
type BloomRow struct {
	Receivers  int
	Hashes     int
	AnalyticFP float64
	MeasuredFP float64
	Overhead   float64 // A-HDR bits / explicit MAC-list bits
}

// BloomStudy compares the analytic false-positive formula against Monte
// Carlo measurement for 1-8 receivers at the implementation's h = 4.
func BloomStudy(scale Scale) ([]BloomRow, error) {
	trials := 300
	if scale == Full {
		trials = 3000
	}
	rng := rand.New(rand.NewSource(41))
	var rows []BloomRow
	for n := 1; n <= bloom.MaxReceivers; n++ {
		probes, hits := 0, 0
		for trial := 0; trial < trials; trial++ {
			macs := make([]bloom.MAC, n)
			for i := range macs {
				rng.Read(macs[i][:])
			}
			f, err := bloom.Build(macs, bloom.DefaultHashes)
			if err != nil {
				return nil, err
			}
			for p := 0; p < 10; p++ {
				var foreign bloom.MAC
				rng.Read(foreign[:])
				for pos := 1; pos <= n; pos++ {
					probes++
					if f.Match(foreign, pos, bloom.DefaultHashes) {
						hits++
					}
				}
			}
		}
		rows = append(rows, BloomRow{
			Receivers:  n,
			Hashes:     bloom.DefaultHashes,
			AnalyticFP: bloom.FalsePositiveRate(n, bloom.DefaultHashes),
			MeasuredFP: float64(hits) / float64(probes),
			Overhead:   bloom.HeaderOverheadRatio(n),
		})
	}
	return rows, nil
}

// PrintBloomStudy renders the §4.1 analysis.
func PrintBloomStudy(w io.Writer, scale Scale) error {
	rows, err := BloomStudy(scale)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "§4.1 — A-HDR Bloom filter false positives (h = 4; paper: 0.31%-5.59% at optimal h, 12.5% header overhead at 8 receivers)")
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{
			fmt.Sprintf("%d", r.Receivers),
			fmt.Sprintf("%.3f%%", 100*r.AnalyticFP),
			fmt.Sprintf("%.3f%%", 100*r.MeasuredFP),
			fmt.Sprintf("%.1f%%", 100*r.Overhead),
		})
	}
	printTable(w, []string{"receivers", "analytic FP", "measured FP", "header overhead"}, table)
	return nil
}

// EnergyRow is the §8 energy summary.
type EnergyRow struct {
	Receivers        int
	RxOverhead       float64
	NodeOverhead     float64
	LegacyOverhearW  float64
	CarpoolOverhearW float64
}

// EnergyStudy reproduces the §8 analysis: the false-positive RX overhead
// bound, the 0.28% node-energy bound for 90%-idle clients, and the mean
// power draw of a station overhearing traffic under legacy (full decode)
// vs Carpool (A-HDR-only) behaviour.
func EnergyStudy() ([]EnergyRow, error) {
	var rows []EnergyRow
	for _, n := range []int{4, 8} {
		node, err := energy.NodeEnergyOverhead(n, bloom.DefaultHashes, 0.90)
		if err != nil {
			return nil, err
		}
		// A station that spends 20% of its time overhearing foreign
		// traffic: legacy decodes all of it; Carpool decodes the two
		// A-HDR symbols of each (~5% of a 40-symbol frame).
		mk := func(fraction float64) (float64, error) {
			b, err := energy.StationBudget(100e9, 0, 0, 20e9, fraction)
			if err != nil {
				return 0, err
			}
			return b.MeanPower(), nil
		}
		legacyW, err := mk(1)
		if err != nil {
			return nil, err
		}
		carpoolW, err := mk(0.05)
		if err != nil {
			return nil, err
		}
		rows = append(rows, EnergyRow{
			Receivers:        n,
			RxOverhead:       energy.FalsePositiveRxOverhead(n, bloom.DefaultHashes),
			NodeOverhead:     node,
			LegacyOverhearW:  legacyW,
			CarpoolOverhearW: carpoolW,
		})
	}
	return rows, nil
}

// PrintEnergyStudy renders the §8 analysis.
func PrintEnergyStudy(w io.Writer) error {
	rows, err := EnergyStudy()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "§8 — energy (paper: <=5.59% extra RX power, <=0.28% node energy at 8 receivers)")
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{
			fmt.Sprintf("%d", r.Receivers),
			fmt.Sprintf("%.2f%%", 100*r.RxOverhead),
			fmt.Sprintf("%.3f%%", 100*r.NodeOverhead),
			fmt.Sprintf("%.3f W", r.LegacyOverhearW),
			fmt.Sprintf("%.3f W", r.CarpoolOverhearW),
		})
	}
	printTable(w, []string{"receivers", "extra RX power", "node energy overhead",
		"legacy overhear draw", "Carpool overhear draw"}, table)
	return nil
}
