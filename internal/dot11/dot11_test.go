package dot11

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"carpool/internal/bloom"
	"carpool/internal/core"
)

func mac(b byte) bloom.MAC { return bloom.MAC{0x02, 0, 0, 0, 0, b} }

func TestFrameTypeString(t *testing.T) {
	names := map[FrameType]string{
		TypeData: "data", TypeQoS: "qos-data", TypeACK: "ack",
		TypeRTS: "rts", TypeCTS: "cts", FrameType(0x3f): "FrameType(0x3f)",
	}
	for ft, want := range names {
		if got := ft.String(); got != want {
			t.Errorf("%#x -> %q, want %q", byte(ft), got, want)
		}
	}
}

func TestDurationRoundTrip(t *testing.T) {
	f := func(us uint16) bool {
		us &= 0x7fff
		d, ok := DecodeDuration(us)
		if !ok {
			return false
		}
		enc, err := encodeDuration(d)
		return err == nil && enc == us
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, ok := DecodeDuration(0x8001); ok {
		t.Error("association ID decoded as duration")
	}
	if _, err := encodeDuration(-time.Second); err == nil {
		t.Error("accepted negative duration")
	}
	if _, err := encodeDuration(time.Second); err == nil {
		t.Error("accepted duration beyond the 15-bit field")
	}
}

func TestDurationRoundsUp(t *testing.T) {
	// NAV must cover the exchange: sub-microsecond remainders round up.
	enc, err := encodeDuration(10*time.Microsecond + 300*time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if enc != 11 {
		t.Errorf("encoded %d, want 11", enc)
	}
}

func TestDataFrameRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, rng.Intn(500))
		rng.Read(payload)
		in := &DataFrame{
			Type:     TypeQoS,
			Duration: time.Duration(rng.Intn(32000)) * time.Microsecond,
			Addr1:    mac(byte(rng.Intn(256))),
			Addr2:    mac(0xAA),
			Addr3:    mac(0xAA),
			Seq:      rng.Intn(4096),
			Frag:     rng.Intn(16),
			MoreData: rng.Intn(2) == 1,
			Payload:  payload,
		}
		b, err := in.Marshal()
		if err != nil {
			return false
		}
		out, err := UnmarshalData(b)
		if err != nil {
			return false
		}
		return out.Type == in.Type && out.Duration == in.Duration &&
			out.Addr1 == in.Addr1 && out.Addr2 == in.Addr2 && out.Addr3 == in.Addr3 &&
			out.Seq == in.Seq && out.Frag == in.Frag && out.MoreData == in.MoreData &&
			bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDataFrameValidation(t *testing.T) {
	if _, err := (&DataFrame{Type: TypeACK}).Marshal(); err == nil {
		t.Error("accepted control type as data")
	}
	if _, err := (&DataFrame{Type: TypeData, Seq: 5000}).Marshal(); err == nil {
		t.Error("accepted out-of-range sequence")
	}
	if _, err := (&DataFrame{Type: TypeData, Duration: time.Second}).Marshal(); err == nil {
		t.Error("accepted oversized duration")
	}
}

func TestDataFrameFCSDetection(t *testing.T) {
	frame := &DataFrame{Type: TypeData, Addr1: mac(1), Payload: []byte("hello")}
	b, err := frame.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(b); i += 5 {
		bad := append([]byte(nil), b...)
		bad[i] ^= 0x10
		if _, err := UnmarshalData(bad); err == nil {
			t.Fatalf("corruption at byte %d undetected", i)
		}
	}
	if _, err := UnmarshalData(b[:8]); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestControlFrameSizes(t *testing.T) {
	// Std 802.11: ACK and CTS are 14 octets, RTS is 20, FCS included.
	ack, err := (&ControlFrame{Type: TypeACK, RA: mac(1)}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(ack) != 14 {
		t.Errorf("ACK is %d bytes, want 14", len(ack))
	}
	cts, err := (&ControlFrame{Type: TypeCTS, RA: mac(1)}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(cts) != 14 {
		t.Errorf("CTS is %d bytes, want 14", len(cts))
	}
	rts, err := (&ControlFrame{Type: TypeRTS, RA: mac(1), TA: mac(2)}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(rts) != 20 {
		t.Errorf("RTS is %d bytes, want 20", len(rts))
	}
}

func TestControlFrameRoundTrip(t *testing.T) {
	for _, ft := range []FrameType{TypeACK, TypeCTS, TypeRTS} {
		in := &ControlFrame{Type: ft, Duration: 154 * time.Microsecond, RA: mac(7), TA: mac(9)}
		b, err := in.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		out, err := UnmarshalControl(b)
		if err != nil {
			t.Fatal(err)
		}
		if out.Type != ft || out.Duration != in.Duration || out.RA != in.RA {
			t.Errorf("%v round trip mismatch", ft)
		}
		if ft == TypeRTS && out.TA != in.TA {
			t.Error("RTS TA lost")
		}
	}
	if _, err := (&ControlFrame{Type: TypeData}).Marshal(); err == nil {
		t.Error("accepted data type as control")
	}
	if _, err := UnmarshalControl([]byte{1, 2, 3}); err == nil {
		t.Error("accepted tiny buffer")
	}
}

func TestBuildSequentialACKs(t *testing.T) {
	tm := core.Timing{SIFS: 10 * time.Microsecond, ACK: 44 * time.Microsecond}
	acks, err := BuildSequentialACKs(tm, mac(0xAA), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(acks) != 4 {
		t.Fatalf("%d ACKs", len(acks))
	}
	// §4.2: the last ACK carries NAV 0 — a legacy ACK.
	if acks[3].Duration != 0 {
		t.Errorf("last ACK duration %v", acks[3].Duration)
	}
	// Each earlier ACK reserves exactly the remaining train.
	for j := 0; j < 3; j++ {
		want := time.Duration(3-j) * (54 * time.Microsecond)
		if acks[j].Duration != want {
			t.Errorf("ACK %d duration %v, want %v", j+1, acks[j].Duration, want)
		}
	}
	// The whole train marshals and validates after a round trip.
	parsed := make([]*ControlFrame, len(acks))
	for i, a := range acks {
		b, err := a.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		parsed[i], err = UnmarshalControl(b)
		if err != nil {
			t.Fatal(err)
		}
	}
	n, err := ValidateACKTrain(tm, parsed)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("validated %d receivers", n)
	}
	if _, err := BuildSequentialACKs(tm, mac(1), 0); err == nil {
		t.Error("accepted zero receivers")
	}
}

func TestValidateACKTrainRejectsTampering(t *testing.T) {
	tm := core.Timing{SIFS: 10 * time.Microsecond, ACK: 44 * time.Microsecond}
	acks, err := BuildSequentialACKs(tm, mac(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	acks[1].Duration += time.Microsecond
	if _, err := ValidateACKTrain(tm, acks); err == nil {
		t.Error("tampered NAV accepted")
	}
	if _, err := ValidateACKTrain(tm, nil); err == nil {
		t.Error("empty train accepted")
	}
	acks[0].Type = TypeCTS
	if _, err := ValidateACKTrain(tm, acks[:1]); err == nil {
		t.Error("non-ACK accepted")
	}
}

func TestBuildCarpoolData(t *testing.T) {
	tm := core.Timing{SIFS: 10 * time.Microsecond, ACK: 44 * time.Microsecond,
		Payload: 500 * time.Microsecond}
	f, err := BuildCarpoolData(tm, 3, mac(1), mac(0xAA), 42, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	want := 500*time.Microsecond + 3*54*time.Microsecond
	if f.Duration != want {
		t.Errorf("NAV %v, want %v (Eq. 1)", f.Duration, want)
	}
	if _, err := BuildCarpoolData(tm, 0, mac(1), mac(2), 0, nil); err == nil {
		t.Error("accepted zero receivers")
	}
}
