package dot11

import (
	"fmt"

	"carpool/internal/bloom"
	"carpool/internal/core"
)

// BuildSequentialACKs constructs the over-the-air ACK train of §4.2: the
// j-th receiver's ACK carries NAV_{N-j+1} in its Duration field, announcing
// how much of the train remains, so the last ACK carries 0 like a legacy
// ACK. The frames are returned in transmission order.
func BuildSequentialACKs(tm core.Timing, ap bloom.MAC, numReceivers int) ([]*ControlFrame, error) {
	if numReceivers < 1 {
		return nil, fmt.Errorf("dot11: need at least one receiver, got %d", numReceivers)
	}
	out := make([]*ControlFrame, numReceivers)
	for j := 1; j <= numReceivers; j++ {
		nav, err := core.ACKNAV(tm, j, numReceivers)
		if err != nil {
			return nil, err
		}
		out[j-1] = &ControlFrame{Type: TypeACK, Duration: nav, RA: ap}
	}
	return out, nil
}

// BuildCarpoolData constructs the downlink data frame of one subframe with
// the aggregate's NAV from Eq. 1 in its Duration field. Every station that
// hears it — receiver or not — defers for the whole transmission sequence.
func BuildCarpoolData(tm core.Timing, numReceivers int,
	dst, ap bloom.MAC, seq int, payload []byte) (*DataFrame, error) {
	nav, err := core.DataNAV(tm, numReceivers)
	if err != nil {
		return nil, err
	}
	return &DataFrame{
		Type:     TypeQoS,
		Duration: nav,
		Addr1:    dst,
		Addr2:    ap,
		Addr3:    ap,
		Seq:      seq,
	}, nil
}

// ValidateACKTrain checks a received ACK sequence against §4.2's NAV rule:
// durations must decrease by exactly one (ACK + SIFS) slot per frame and
// end at zero. It returns the number of receivers the train covered.
func ValidateACKTrain(tm core.Timing, acks []*ControlFrame) (int, error) {
	n := len(acks)
	if n == 0 {
		return 0, fmt.Errorf("dot11: empty ACK train")
	}
	for j, ack := range acks {
		if ack.Type != TypeACK {
			return 0, fmt.Errorf("dot11: frame %d is %v, not an ACK", j, ack.Type)
		}
		want, err := core.ACKNAV(tm, j+1, n)
		if err != nil {
			return 0, err
		}
		if ack.Duration != want {
			return 0, fmt.Errorf("dot11: ACK %d carries NAV %v, want %v", j+1, ack.Duration, want)
		}
	}
	return n, nil
}
