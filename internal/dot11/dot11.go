// Package dot11 implements the IEEE 802.11 MAC frame formats Carpool's
// sequential ACK rides on: the data/management header with its Duration
// (NAV) field, and the ACK / RTS / CTS control frames. The paper's Eqs. 1-2
// are values *carried in these headers* — a node that hears any frame
// updates its virtual carrier sense from the Duration field — so the MAC
// simulator's NAV arithmetic corresponds to bits a real sniffer would see.
//
// Layouts follow IEEE Std 802.11-2012 §8.2/§8.3 (little-endian fields,
// FCS-terminated). Only the subset the system needs is implemented:
// data frames with three addresses, and the three control frames.
package dot11

import (
	"encoding/binary"
	"fmt"
	"time"

	"carpool/internal/bloom"
	"carpool/internal/fec"
)

// FrameType is the 802.11 Type/Subtype pair, packed as in the Frame Control
// field's bits 2..7 (type in bits 2-3, subtype in bits 4-7).
type FrameType byte

// Supported type/subtype combinations.
const (
	TypeData FrameType = 0x20 // type 10, subtype 0000
	TypeQoS  FrameType = 0x22 // type 10, subtype 1000 -> bits: 10 1000
	TypeACK  FrameType = 0x1D // type 01, subtype 1101
	TypeRTS  FrameType = 0x1B // type 01, subtype 1011
	TypeCTS  FrameType = 0x1C // type 01, subtype 1100
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case TypeData:
		return "data"
	case TypeQoS:
		return "qos-data"
	case TypeACK:
		return "ack"
	case TypeRTS:
		return "rts"
	case TypeCTS:
		return "cts"
	default:
		return fmt.Sprintf("FrameType(%#x)", byte(t))
	}
}

// MaxDuration is the largest value the 15-bit Duration field encodes, in
// microseconds.
const MaxDuration = 32767 * time.Microsecond

// encodeDuration packs a NAV duration into the 16-bit Duration/ID field
// (bit 15 clear marks a duration value).
func encodeDuration(d time.Duration) (uint16, error) {
	if d < 0 || d > MaxDuration {
		return 0, fmt.Errorf("dot11: duration %v outside 0..%v", d, MaxDuration)
	}
	us := (d + time.Microsecond - 1) / time.Microsecond // round up: NAV must cover the exchange
	return uint16(us), nil
}

// DecodeDuration reads a Duration/ID field back as a NAV duration; ok is
// false for association-ID encodings (bit 15 set).
func DecodeDuration(field uint16) (time.Duration, bool) {
	if field&0x8000 != 0 {
		return 0, false
	}
	return time.Duration(field) * time.Microsecond, true
}

// DataFrame is a three-address 802.11 data MPDU.
type DataFrame struct {
	Type     FrameType // TypeData or TypeQoS
	Duration time.Duration
	// Addr1 is the receiver, Addr2 the transmitter, Addr3 the BSSID (an
	// AP-to-STA downlink frame).
	Addr1, Addr2, Addr3 bloom.MAC
	// Sequence number (0..4095) and fragment (0..15).
	Seq, Frag int
	// MoreData mirrors the frame-control More Data bit — Carpool receivers
	// can learn more traffic is queued for them.
	MoreData bool
	Payload  []byte
}

const dataHeaderLen = 2 + 2 + 3*6 + 2 // FC + Duration + 3 addresses + SeqCtl

// Marshal serializes the frame including its FCS.
func (f *DataFrame) Marshal() ([]byte, error) {
	if f.Type != TypeData && f.Type != TypeQoS {
		return nil, fmt.Errorf("dot11: %v is not a data frame type", f.Type)
	}
	if f.Seq < 0 || f.Seq > 4095 || f.Frag < 0 || f.Frag > 15 {
		return nil, fmt.Errorf("dot11: sequence %d/%d out of range", f.Seq, f.Frag)
	}
	dur, err := encodeDuration(f.Duration)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, dataHeaderLen, dataHeaderLen+len(f.Payload)+4)
	fc := uint16(f.Type) << 2 // version 00 in bits 0-1
	if f.MoreData {
		fc |= 1 << 13
	}
	binary.LittleEndian.PutUint16(buf[0:], fc)
	binary.LittleEndian.PutUint16(buf[2:], dur)
	copy(buf[4:], f.Addr1[:])
	copy(buf[10:], f.Addr2[:])
	copy(buf[16:], f.Addr3[:])
	binary.LittleEndian.PutUint16(buf[22:], uint16(f.Seq)<<4|uint16(f.Frag))
	buf = append(buf, f.Payload...)
	return fec.AppendFCS(buf), nil
}

// UnmarshalData parses a data frame, verifying the FCS.
func UnmarshalData(b []byte) (*DataFrame, error) {
	body, okFCS := fec.CheckFCS(b)
	if !okFCS {
		return nil, fmt.Errorf("dot11: FCS check failed")
	}
	if len(body) < dataHeaderLen {
		return nil, fmt.Errorf("dot11: data frame too short (%d bytes)", len(body))
	}
	fc := binary.LittleEndian.Uint16(body[0:])
	ft := FrameType(fc >> 2 & 0x3f)
	if ft != TypeData && ft != TypeQoS {
		return nil, fmt.Errorf("dot11: not a data frame (%v)", ft)
	}
	dur, okDur := DecodeDuration(binary.LittleEndian.Uint16(body[2:]))
	if !okDur {
		return nil, fmt.Errorf("dot11: association-ID in data frame duration")
	}
	f := &DataFrame{
		Type:     ft,
		Duration: dur,
		MoreData: fc&(1<<13) != 0,
	}
	copy(f.Addr1[:], body[4:])
	copy(f.Addr2[:], body[10:])
	copy(f.Addr3[:], body[16:])
	sc := binary.LittleEndian.Uint16(body[22:])
	f.Seq = int(sc >> 4)
	f.Frag = int(sc & 0xf)
	f.Payload = append([]byte(nil), body[dataHeaderLen:]...)
	return f, nil
}

// ControlFrame is an ACK, RTS or CTS.
type ControlFrame struct {
	Type     FrameType
	Duration time.Duration
	// RA is the receiver address; TA (RTS only) the transmitter.
	RA, TA bloom.MAC
}

// Marshal serializes the control frame including its FCS: ACK and CTS are
// 14 bytes; RTS is 20.
func (f *ControlFrame) Marshal() ([]byte, error) {
	dur, err := encodeDuration(f.Duration)
	if err != nil {
		return nil, err
	}
	var body []byte
	switch f.Type {
	case TypeACK, TypeCTS:
		body = make([]byte, 10)
	case TypeRTS:
		body = make([]byte, 16)
	default:
		return nil, fmt.Errorf("dot11: %v is not a control frame type", f.Type)
	}
	binary.LittleEndian.PutUint16(body[0:], uint16(f.Type)<<2)
	binary.LittleEndian.PutUint16(body[2:], dur)
	copy(body[4:], f.RA[:])
	if f.Type == TypeRTS {
		copy(body[10:], f.TA[:])
	}
	return fec.AppendFCS(body), nil
}

// UnmarshalControl parses an ACK, RTS or CTS, verifying the FCS.
func UnmarshalControl(b []byte) (*ControlFrame, error) {
	body, okFCS := fec.CheckFCS(b)
	if !okFCS {
		return nil, fmt.Errorf("dot11: FCS check failed")
	}
	if len(body) < 10 {
		return nil, fmt.Errorf("dot11: control frame too short (%d bytes)", len(body))
	}
	fc := binary.LittleEndian.Uint16(body[0:])
	ft := FrameType(fc >> 2 & 0x3f)
	f := &ControlFrame{Type: ft}
	dur, okDur := DecodeDuration(binary.LittleEndian.Uint16(body[2:]))
	if !okDur {
		return nil, fmt.Errorf("dot11: association-ID in control frame duration")
	}
	f.Duration = dur
	copy(f.RA[:], body[4:])
	switch ft {
	case TypeACK, TypeCTS:
		if len(body) != 10 {
			return nil, fmt.Errorf("dot11: %v frame has %d body bytes, want 10", ft, len(body))
		}
	case TypeRTS:
		if len(body) != 16 {
			return nil, fmt.Errorf("dot11: RTS frame has %d body bytes, want 16", len(body))
		}
		copy(f.TA[:], body[10:])
	default:
		return nil, fmt.Errorf("dot11: unsupported control type %v", ft)
	}
	return f, nil
}
