package mac

import (
	"fmt"
	"math/rand"

	"carpool/internal/fec"
	"carpool/internal/trace"
)

// DeliveryOracle decides whether a (sub)frame spanning a run of OFDM
// symbols survives the channel and FEC. Implementations: TraceOracle
// (trace-driven, the paper's methodology) and FixedOracle (tests).
type DeliveryOracle interface {
	// SubframeOK reports delivery of a subframe occupying symbols
	// [startSym, startSym+numSym) of a frame heard by the station at
	// location locID, decoded with (rte) or without real-time estimation.
	SubframeOK(locID int, rte bool, startSym, numSym int) (bool, error)
}

// SymbolSpan is one subframe's DATA extent within an aggregate — the unit
// a DeliveryOracle rules on.
type SymbolSpan struct {
	Start, Num int
}

// HeardMask asks o whether each span survives for the station at loc,
// filling heard[i] and returning the number heard. A nil oracle hears
// everything. This is the reception picture cross-subframe erasure
// decoding needs: not just a receiver's own subframe verdict, but which
// of the aggregate's data and parity shards it overheard — the engine's
// coded (FEC) transport queries it per receiver.
func HeardMask(o DeliveryOracle, loc int, rte bool, spans []SymbolSpan, heard []bool) (int, error) {
	n := 0
	for i, sp := range spans {
		ok := true
		if o != nil {
			var err error
			ok, err = o.SubframeOK(loc, rte, sp.Start, sp.Num)
			if err != nil {
				return n, err
			}
		}
		heard[i] = ok
		if ok {
			n++
		}
	}
	return n, nil
}

// TraceOracle adapts a trace.Model. The PHY traces are collected at QAM64
// rate 2/3 (the closest 802.11a scheme to the paper's 65 Mbit/s 802.11n
// MCS 7); symbol indices map one-to-one.
type TraceOracle struct {
	Model *trace.Model
}

var _ DeliveryOracle = (*TraceOracle)(nil)

// SubframeOK queries the trace model.
func (o *TraceOracle) SubframeOK(locID int, rte bool, startSym, numSym int) (bool, error) {
	est := trace.Standard
	if rte {
		est = trace.RTE
	}
	return o.Model.SubframeOK(locID, est, startSym, numSym, fec.Rate2_3)
}

// FixedOracle delivers subframes with a fixed success probability,
// independent of position — used by unit tests and ideal-channel baselines.
type FixedOracle struct {
	// P is the per-subframe success probability (1 = lossless).
	P   float64
	rng *rand.Rand
}

var _ DeliveryOracle = (*FixedOracle)(nil)

// NewFixedOracle validates p and seeds the oracle.
func NewFixedOracle(p float64, seed int64) (*FixedOracle, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("mac: success probability %v outside [0,1]", p)
	}
	return &FixedOracle{P: p, rng: rand.New(rand.NewSource(seed))}, nil
}

// SubframeOK draws one Bernoulli sample.
func (o *FixedOracle) SubframeOK(int, bool, int, int) (bool, error) {
	if o.P >= 1 {
		return true, nil
	}
	return o.rng.Float64() < o.P, nil
}

// LossyLocOracle fails every subframe heard at the listed trace locations
// and delivers everything else. Being a pure function of the location — no
// RNG stream, no call-order state — it produces identical outcomes in the
// discrete-event simulator and the real-time engine even though the two
// schedule transmissions (and therefore oracle calls) in different orders.
// The engine-vs-simulator differential tests lean on exactly that.
type LossyLocOracle struct {
	dead map[int]bool
}

var _ DeliveryOracle = (*LossyLocOracle)(nil)

// NewLossyLocOracle marks the given locations as undeliverable.
func NewLossyLocOracle(deadLocs ...int) *LossyLocOracle {
	dead := make(map[int]bool, len(deadLocs))
	for _, l := range deadLocs {
		dead[l] = true
	}
	return &LossyLocOracle{dead: dead}
}

// SubframeOK fails iff the location is marked dead.
func (o *LossyLocOracle) SubframeOK(locID int, _ bool, _, _ int) (bool, error) {
	return !o.dead[locID], nil
}

// BiasedOracle makes later symbol spans fail more — a cheap stand-in for
// the BER bias when tests want position sensitivity without PHY traces.
// Failure probability grows linearly with the span midpoint unless rte.
type BiasedOracle struct {
	// PerSymbol is the per-symbol failure slope for non-RTE decoding.
	PerSymbol float64
	rng       *rand.Rand
}

var _ DeliveryOracle = (*BiasedOracle)(nil)

// NewBiasedOracle seeds the oracle.
func NewBiasedOracle(perSymbol float64, seed int64) *BiasedOracle {
	return &BiasedOracle{PerSymbol: perSymbol, rng: rand.New(rand.NewSource(seed))}
}

// SubframeOK fails long-tail spans under standard estimation.
func (o *BiasedOracle) SubframeOK(_ int, rte bool, startSym, numSym int) (bool, error) {
	if rte {
		return true, nil
	}
	mid := float64(startSym) + float64(numSym)/2
	pFail := o.PerSymbol * mid
	if pFail > 1 {
		pFail = 1
	}
	return o.rng.Float64() >= pFail, nil
}
