package mac

import (
	"fmt"
	"math/rand"
	"time"

	"carpool/internal/obs"
	"carpool/internal/stats"
	"carpool/internal/traffic"
)

// Config parameterizes one simulation run.
type Config struct {
	Protocol Protocol
	// NumSTAs is the number of stations associated with the AP(s).
	NumSTAs int
	// NumAPs is the number of access points sharing the carrier-sense
	// range (the paper's simulation uses two). Station i associates with
	// AP i mod NumAPs. Zero selects 1.
	NumAPs int
	// Duration of simulated time.
	Duration time.Duration
	Seed     int64
	// Rates: zero value selects DefaultRates().
	Rates Rates
	// MaxAggBytes caps one aggregate's total payload (default 64 KiB).
	MaxAggBytes int
	// MaxReceivers caps Carpool/MU-Aggregation destinations (default 8).
	MaxReceivers int
	// MaxLatency, when nonzero, drops downlink frames that waited longer
	// (the latency requirement of Fig. 17a).
	MaxLatency time.Duration
	// RetryLimit per frame (default 7).
	RetryLimit int
	// QueueCap bounds each queue in frames (default 300); overflow drops.
	QueueCap int
	// Downlink[i] and Uplink[i] are station i's traffic.
	Downlink [][]traffic.Arrival
	Uplink   [][]traffic.Arrival
	// Oracle decides PHY delivery; nil is lossless.
	Oracle DeliveryOracle
	// STALocations[i] is station i's trace location ID (nil: all zero).
	STALocations []int
	// WiFoxBacklogThreshold switches the AP to high priority (default 10).
	WiFoxBacklogThreshold int
	// SaturatedUplink models every station as always having an uplink
	// frame pending (the Bianchi saturation assumption the paper's MAC
	// emulation leans on): stations contend in every round, which is what
	// starves a fair-DCF AP in large audience environments. Uplink frames
	// sent this way carry UplinkSaturationBytes and count only toward
	// uplink goodput.
	SaturatedUplink bool
	// UplinkSaturationBytes sizes synthetic saturated-uplink frames
	// (default 120, VoIP-sized).
	UplinkSaturationBytes int
	// SimultaneousACK ablates §4.2's sequential ACK: all receivers of a
	// multi-receiver frame answer in the same SIFS slot, so with more than
	// one receiver the ACKs collide and the AP — hearing at most one
	// captured ACK — must retransmit everyone else's subframes.
	SimultaneousACK bool
	// UseRTSCTS protects AP transmissions with the multicast RTS / CTS
	// train of §4.2 (Fig. 7): one RTS carrying the A-HDR, then one CTS per
	// receiver separated by SIFS. It costs airtime up front but would
	// shield against hidden terminals.
	UseRTSCTS bool
	// Obs receives MAC counters, the delay histogram, and simulator trace
	// events (stamped with simulated time). Nil falls back to the globally
	// enabled sink (obs.Active); when that is also nil the touch points are
	// no-ops. Per-station delivered-byte counters always run on a private
	// registry — they feed ByteFairnessIndex.
	Obs *obs.Sink
}

func (c Config) withDefaults() (Config, error) {
	if !c.Protocol.Valid() {
		return c, fmt.Errorf("mac: invalid protocol %v", c.Protocol)
	}
	if c.NumSTAs < 1 {
		return c, fmt.Errorf("mac: need at least one STA, got %d", c.NumSTAs)
	}
	if c.Duration <= 0 {
		return c, fmt.Errorf("mac: non-positive duration %v", c.Duration)
	}
	if c.Rates == (Rates{}) {
		c.Rates = DefaultRates()
	}
	if c.MaxAggBytes == 0 {
		c.MaxAggBytes = 64 << 10
	}
	if c.MaxReceivers == 0 {
		c.MaxReceivers = 8
	}
	if c.RetryLimit == 0 {
		c.RetryLimit = DefaultRetryLimit
	}
	if c.QueueCap == 0 {
		c.QueueCap = 300
	}
	if c.WiFoxBacklogThreshold == 0 {
		c.WiFoxBacklogThreshold = 10
	}
	if c.UplinkSaturationBytes == 0 {
		c.UplinkSaturationBytes = 120
	}
	if c.NumAPs == 0 {
		c.NumAPs = 1
	}
	if c.NumAPs < 0 || c.NumAPs > c.NumSTAs {
		return c, fmt.Errorf("mac: NumAPs %d outside 1..NumSTAs", c.NumAPs)
	}
	if len(c.Downlink) > c.NumSTAs || len(c.Uplink) > c.NumSTAs {
		return c, fmt.Errorf("mac: traffic for %d/%d STAs exceeds NumSTAs %d",
			len(c.Downlink), len(c.Uplink), c.NumSTAs)
	}
	if c.STALocations != nil && len(c.STALocations) < c.NumSTAs {
		return c, fmt.Errorf("mac: %d locations for %d STAs", len(c.STALocations), c.NumSTAs)
	}
	return c, nil
}

// Result aggregates one run's metrics.
type Result struct {
	Protocol Protocol
	// DownlinkGoodputMbps counts delivered downlink payload bits per
	// second of simulated time; UplinkGoodputMbps likewise.
	DownlinkGoodputMbps float64
	UplinkGoodputMbps   float64
	// MeanDelay is the mean queueing+service delay of delivered downlink
	// frames; P95Delay the 95th percentile.
	MeanDelay time.Duration
	P95Delay  time.Duration
	// Delivered / Dropped / Expired count downlink frames: dropped ones
	// hit the retry limit or a full queue; expired ones exceeded
	// MaxLatency before transmission.
	Delivered, Dropped, Expired int
	// Collisions counts collision events; APTransmissions and
	// STATransmissions successful channel acquisitions.
	Collisions, APTransmissions, STATransmissions int
	Retries                                       int
	// BusyTime is total channel occupancy (data + ACKs).
	BusyTime time.Duration
	// PerSTAGoodputMbps is each station's delivered downlink rate, and
	// FairnessIndex the Jain index over those rates (1 = perfectly fair):
	// the §8 fairness discussion notes Carpool's FIFO serves stations
	// evenly while starvation shows up as a low index.
	PerSTAGoodputMbps []float64
	FairnessIndex     float64
	// DeliveredBytesPerSTA is each station's delivered downlink byte
	// total, read back from the per-run `mac.sta.<i>.delivered_bytes` obs
	// counters, and ByteFairnessIndex the Jain index over those totals —
	// the duration-independent form of FairnessIndex.
	DeliveredBytesPerSTA []int64
	ByteFairnessIndex    float64
	// Energy-accounting inputs (§8): per-station airtime by role.
	APTxTime     time.Duration
	STATxTime    []time.Duration
	STARxOwnTime []time.Duration
	STAOverhear  []time.Duration
}

// frame is one queued MAC frame.
type frame struct {
	sta     int
	size    int
	arrival time.Duration
	retries int
}

// txSub is one receiver's share of a planned transmission.
type txSub struct {
	sta    int
	frames []frame
	// spans[i] is the symbol range of frames[i] within the whole PHY
	// frame, for the delivery oracle.
	spans [][2]int
	// sharedFate marks a subframe protected by a single FCS (A-MSDU): one
	// oracle draw decides every contained frame.
	sharedFate bool
}

// txPlan is one AP transmission.
type txPlan struct {
	subs    []txSub
	airtime time.Duration
	ackTime time.Duration
	rte     bool
}

// apState is one access point's queue and contention state.
type apState struct {
	queue   []frame
	cw      int
	backoff int
	pending bool
}

// simObs holds the simulator's observability handles, resolved once per
// Run. With no sink every handle is nil and the nil-safe metric methods
// make each touch point a cheap no-op.
type simObs struct {
	backoffDraws *obs.Counter
	collisions   *obs.Counter
	apTx         *obs.Counter
	staTx        *obs.Counter
	aggSubframes *obs.Counter
	seqAcks      *obs.Counter
	delivered    *obs.Counter
	dropped      *obs.Counter
	expired      *obs.Counter
	retries      *obs.Counter
	delayMs      *obs.Histogram
	queueDepth   *obs.Gauge
	tracer       *obs.Tracer

	// Canonical cross-layer queue counters (obs.QueueDropped etc.): the
	// real-time engine reports the same outcomes under the same names, so
	// a simulator run and an engine run are directly comparable. They tick
	// alongside the mac.*-scoped counters above.
	qDropped      *obs.Counter
	qExpired      *obs.Counter
	qBackpressure *obs.Counter
	qDepth        *obs.Gauge
}

// delayBucketsMs spans the Fig. 17a latency-requirement sweep (10-200 ms).
var delayBucketsMs = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500}

func resolveSimObs(sink *obs.Sink) simObs {
	if sink == nil {
		return simObs{}
	}
	return simObs{
		backoffDraws: sink.Counter("mac.backoff_draws"),
		collisions:   sink.Counter("mac.collisions"),
		apTx:         sink.Counter("mac.ap_tx"),
		staTx:        sink.Counter("mac.sta_tx"),
		aggSubframes: sink.Counter("mac.agg_subframes"),
		seqAcks:      sink.Counter("mac.seq_acks"),
		delivered:    sink.Counter("mac.delivered"),
		dropped:      sink.Counter("mac.dropped"),
		expired:      sink.Counter("mac.expired"),
		retries:      sink.Counter("mac.retries"),
		delayMs:      sink.Histogram("mac.delay_ms", delayBucketsMs),
		queueDepth:   sink.Gauge("mac.queue_depth"),
		tracer:       sink.Tracer,

		qDropped:      sink.Counter(obs.QueueDropped),
		qExpired:      sink.Counter(obs.QueueExpired),
		qBackpressure: sink.Counter(obs.QueueBackpressure),
		qDepth:        sink.Gauge(obs.QueueDepth),
	}
}

type simulator struct {
	cfg    Config
	rng    *rand.Rand
	oracle DeliveryOracle
	now    time.Duration

	// mobs are the resolved external observability handles; staDelivered
	// are the per-station delivered-byte counters on a private per-run
	// registry (they always run — finish() derives ByteFairnessIndex from
	// them).
	mobs         simObs
	staDelivered []*obs.Counter

	// Per-AP downlink state; perSTACnt caps each station's backlog.
	aps       []apState
	perSTACnt []int
	// Uplink queues.
	upQueues [][]frame
	staCW    []int
	staBkoff []int
	staPend  []bool
	// Arrival cursors.
	dIdx, uIdx []int

	res         Result
	delays      []float64
	delaySum    time.Duration
	downBytes   int64
	upBytes     int64
	perSTABytes []int64

	// Scratch storage reused across slots and transmissions — the
	// simulator's allocation purge. Only ever read between one reset and
	// the next; nothing reachable from Result aliases it.
	apWin, staWin []int     // per-slot contention winners
	savedQueue    []frame   // collision airtime probe snapshot
	requeue       []frame   // failed frames headed back to the queue
	inPlan        []bool    // per-STA membership of the current plan
	staSlot       []int     // per-STA subframe slot (-1 = none), multi-user planner
	groups        [][]int   // queue indices per subframe, inner slices recycled
	selected      []int     // ascending queue indices for single-receiver planners
	qBits         []uint64  // queue-compaction bitset, multi-user planner
	planFrames    []frame   // flat backing for every sub's frames
	planSpans     [][2]int  // flat backing for every sub's spans
	plan          txPlan    // the one plan alive at a time
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	oracle := cfg.Oracle
	if oracle == nil {
		oracle, err = NewFixedOracle(1, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}
	sink := cfg.Obs
	if sink == nil {
		sink = obs.Active()
	}
	priv := obs.NewRegistry()
	staDelivered := make([]*obs.Counter, cfg.NumSTAs)
	for i := range staDelivered {
		staDelivered[i] = priv.Counter(fmt.Sprintf("mac.sta.%d.delivered_bytes", i))
	}
	s := &simulator{
		cfg:          cfg,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		oracle:       oracle,
		mobs:         resolveSimObs(sink),
		staDelivered: staDelivered,
		aps:          make([]apState, cfg.NumAPs),
		perSTACnt:    make([]int, cfg.NumSTAs),
		upQueues:     make([][]frame, cfg.NumSTAs),
		staCW:        make([]int, cfg.NumSTAs),
		staBkoff:     make([]int, cfg.NumSTAs),
		staPend:      make([]bool, cfg.NumSTAs),
		dIdx:         make([]int, cfg.NumSTAs),
		uIdx:         make([]int, cfg.NumSTAs),
		perSTABytes:  make([]int64, cfg.NumSTAs),
		inPlan:       make([]bool, cfg.NumSTAs),
		staSlot:      make([]int, cfg.NumSTAs),
	}
	for i := range s.staSlot {
		s.staSlot[i] = -1
	}
	for a := range s.aps {
		s.aps[a].cw = CWMin
	}
	for i := range s.staCW {
		s.staCW[i] = CWMin
	}
	s.res = Result{
		Protocol:     cfg.Protocol,
		STATxTime:    make([]time.Duration, cfg.NumSTAs),
		STARxOwnTime: make([]time.Duration, cfg.NumSTAs),
		STAOverhear:  make([]time.Duration, cfg.NumSTAs),
	}
	if err := s.loop(); err != nil {
		return nil, err
	}
	s.finish()
	return &s.res, nil
}

// noteBackoff records one contention backoff draw: who is the station
// index, or -1-apIdx for an access point.
func (s *simulator) noteBackoff(who, slots int) {
	s.mobs.backoffDraws.Inc()
	s.mobs.tracer.EmitAt(int64(s.now), obs.EvBackoffDraw, int64(who), int64(slots))
}

// apOf returns the AP a station associates with.
func (s *simulator) apOf(sta int) int { return sta % s.cfg.NumAPs }

func (s *simulator) locOf(sta int) int {
	if s.cfg.STALocations == nil {
		return 0
	}
	return s.cfg.STALocations[sta]
}

// ingest moves arrivals at or before now into the queues.
func (s *simulator) ingest() {
	for sta := 0; sta < s.cfg.NumSTAs; sta++ {
		if sta < len(s.cfg.Downlink) {
			flow := s.cfg.Downlink[sta]
			for s.dIdx[sta] < len(flow) && flow[s.dIdx[sta]].Time <= s.now {
				a := flow[s.dIdx[sta]]
				s.dIdx[sta]++
				if s.perSTACnt[sta] >= s.cfg.QueueCap {
					s.res.Dropped++
					s.mobs.dropped.Inc()
					s.mobs.qDropped.Inc()
					s.mobs.qBackpressure.Inc()
					continue
				}
				s.perSTACnt[sta]++
				ap := &s.aps[s.apOf(sta)]
				ap.queue = append(ap.queue, frame{sta: sta, size: a.Size, arrival: a.Time})
			}
		}
		if sta < len(s.cfg.Uplink) {
			flow := s.cfg.Uplink[sta]
			for s.uIdx[sta] < len(flow) && flow[s.uIdx[sta]].Time <= s.now {
				a := flow[s.uIdx[sta]]
				s.uIdx[sta]++
				if len(s.upQueues[sta]) >= s.cfg.QueueCap {
					continue // uplink overflow is not a downlink metric
				}
				s.upQueues[sta] = append(s.upQueues[sta], frame{sta: sta, size: a.Size, arrival: a.Time})
			}
		}
	}
}

// nextArrival returns the earliest future arrival.
func (s *simulator) nextArrival() (time.Duration, bool) {
	best := time.Duration(-1)
	consider := func(t time.Duration) {
		if best < 0 || t < best {
			best = t
		}
	}
	for sta := 0; sta < s.cfg.NumSTAs; sta++ {
		if sta < len(s.cfg.Downlink) && s.dIdx[sta] < len(s.cfg.Downlink[sta]) {
			consider(s.cfg.Downlink[sta][s.dIdx[sta]].Time)
		}
		if sta < len(s.cfg.Uplink) && s.uIdx[sta] < len(s.cfg.Uplink[sta]) {
			consider(s.cfg.Uplink[sta][s.uIdx[sta]].Time)
		}
	}
	return best, best >= 0
}

// expireAPQueues drops downlink frames older than MaxLatency.
func (s *simulator) expireAPQueues() {
	if s.cfg.MaxLatency <= 0 {
		return
	}
	for a := range s.aps {
		ap := &s.aps[a]
		kept := ap.queue[:0]
		for _, f := range ap.queue {
			if s.now-f.arrival > s.cfg.MaxLatency {
				s.perSTACnt[f.sta]--
				s.res.Expired++
				s.mobs.expired.Inc()
				s.mobs.qExpired.Inc()
				s.mobs.tracer.EmitAt(int64(s.now), obs.EvQueueExpiry, int64(f.sta), 0)
				continue
			}
			kept = append(kept, f)
		}
		ap.queue = kept
	}
}

func (s *simulator) apCWForDraw(ap *apState) int {
	if s.cfg.Protocol != WiFox {
		return ap.cw
	}
	// WiFox: adaptive priority — the more backlogged the AP, the smaller
	// its contention window. The levels are moderate (CW 7 and 5 rather
	// than near-zero) to mirror WiFox's design goal of boosting the AP
	// without starving uplink stations.
	backlog := len(ap.queue)
	switch {
	case backlog > 4*s.cfg.WiFoxBacklogThreshold:
		return 5
	case backlog > s.cfg.WiFoxBacklogThreshold:
		return 7
	default:
		return ap.cw
	}
}

func (s *simulator) loop() error {
	for s.now < s.cfg.Duration {
		s.ingest()
		s.expireAPQueues()

		anyAP := false
		for a := range s.aps {
			ap := &s.aps[a]
			has := len(ap.queue) > 0
			if has && !ap.pending {
				ap.backoff = s.rng.Intn(s.apCWForDraw(ap) + 1)
				ap.pending = true
				s.noteBackoff(-1-a, ap.backoff)
			}
			if !has {
				ap.pending = false
			}
			anyAP = anyAP || has
		}
		anySTA := false
		for sta := 0; sta < s.cfg.NumSTAs; sta++ {
			has := len(s.upQueues[sta]) > 0 || s.cfg.SaturatedUplink
			if has && !s.staPend[sta] {
				s.staBkoff[sta] = s.rng.Intn(s.staCW[sta] + 1)
				s.staPend[sta] = true
				s.noteBackoff(sta, s.staBkoff[sta])
			}
			if !has {
				s.staPend[sta] = false
			}
			anySTA = anySTA || has
		}

		if !anyAP && !anySTA {
			t, ok := s.nextArrival()
			if !ok {
				return nil
			}
			if t >= s.cfg.Duration {
				s.now = s.cfg.Duration
				return nil
			}
			s.now = t
			continue
		}

		// Contention: the minimum backoff wins after DIFS + slots.
		minB := -1
		for a := range s.aps {
			if s.aps[a].pending && (minB < 0 || s.aps[a].backoff < minB) {
				minB = s.aps[a].backoff
			}
		}
		for sta := 0; sta < s.cfg.NumSTAs; sta++ {
			if s.staPend[sta] && (minB < 0 || s.staBkoff[sta] < minB) {
				minB = s.staBkoff[sta]
			}
		}
		s.now += DIFS + time.Duration(minB)*SlotTime

		apWinners := s.apWin[:0]
		for a := range s.aps {
			if s.aps[a].pending {
				if s.aps[a].backoff == minB {
					apWinners = append(apWinners, a)
				} else {
					s.aps[a].backoff -= minB
				}
			}
		}
		staWinners := s.staWin[:0]
		for sta := 0; sta < s.cfg.NumSTAs; sta++ {
			if s.staPend[sta] {
				if s.staBkoff[sta] == minB {
					staWinners = append(staWinners, sta)
				} else {
					s.staBkoff[sta] -= minB
				}
			}
		}
		s.apWin, s.staWin = apWinners, staWinners

		nWinners := len(staWinners) + len(apWinners)
		switch {
		case nWinners == 1 && len(apWinners) == 1:
			if err := s.apTransmit(apWinners[0]); err != nil {
				return err
			}
		case nWinners == 1:
			if err := s.staTransmit(staWinners[0]); err != nil {
				return err
			}
		default:
			s.collision(apWinners, staWinners)
		}
	}
	return nil
}

// collision occupies the channel for the longest colliding frame plus an
// ACK timeout, doubles every collider's window and redraws backoffs.
func (s *simulator) collision(apWinners, staWinners []int) {
	s.res.Collisions++
	s.mobs.collisions.Inc()
	s.mobs.tracer.EmitAt(int64(s.now), obs.EvCollision, int64(len(apWinners)+len(staWinners)), 0)
	longest := time.Duration(0)
	for _, a := range apWinners {
		ap := &s.aps[a]
		// Compute the collided frame's airtime without consuming the
		// queue: the AP retries the same frames after backoff. The plan
		// builder compacts the queue in place, so snapshot it into scratch
		// and copy it back (the backing array keeps its capacity).
		s.savedQueue = append(s.savedQueue[:0], ap.queue...)
		plan := s.buildAPPlan(ap)
		ap.queue = append(ap.queue[:0], s.savedQueue...)
		if plan != nil && plan.airtime > longest {
			longest = plan.airtime
		}
		ap.cw = min(2*ap.cw+1, CWMax)
		ap.backoff = s.rng.Intn(s.apCWForDraw(ap) + 1)
		s.noteBackoff(-1-a, ap.backoff)
	}
	for _, sta := range staWinners {
		size := s.cfg.UplinkSaturationBytes
		if len(s.upQueues[sta]) > 0 {
			size = s.upQueues[sta][0].size
		}
		if a := FrameAirtime(size, s.cfg.Rates); a > longest {
			longest = a
		}
		s.staCW[sta] = min(2*s.staCW[sta]+1, CWMax)
		s.staBkoff[sta] = s.rng.Intn(s.staCW[sta] + 1)
		s.noteBackoff(sta, s.staBkoff[sta])
	}
	occupancy := longest + SIFS + ACKAirtime(s.cfg.Rates) // ACK timeout
	s.now += occupancy
	s.res.BusyTime += occupancy
	s.res.Retries++
	s.mobs.retries.Inc()
}

// staTransmit sends one uplink frame.
func (s *simulator) staTransmit(sta int) error {
	q := s.upQueues[sta]
	synthetic := len(q) == 0 // saturated-uplink filler frame
	var f frame
	if synthetic {
		f = frame{sta: sta, size: s.cfg.UplinkSaturationBytes, arrival: s.now}
	} else {
		f = q[0]
	}
	airtime := FrameAirtime(f.size, s.cfg.Rates)
	nsym := DataSymbols(MACHeaderBytes+f.size+FCSBytes, s.cfg.Rates.DataMbps)
	ok, err := s.oracle.SubframeOK(s.locOf(sta), false, 0, nsym)
	if err != nil {
		return err
	}
	occupancy := airtime + SIFS + ACKAirtime(s.cfg.Rates)
	s.now += occupancy
	s.res.BusyTime += occupancy
	s.res.STATransmissions++
	s.res.STATxTime[sta] += airtime
	s.mobs.staTx.Inc()

	switch {
	case ok && synthetic:
		s.upBytes += int64(f.size)
		s.staCW[sta] = CWMin
	case ok:
		s.upQueues[sta] = q[1:]
		s.upBytes += int64(f.size)
		s.staCW[sta] = CWMin
	case synthetic:
		s.res.Retries++
		s.mobs.retries.Inc()
		s.staCW[sta] = min(2*s.staCW[sta]+1, CWMax)
	default:
		f.retries++
		s.res.Retries++
		s.mobs.retries.Inc()
		if f.retries > s.cfg.RetryLimit {
			s.upQueues[sta] = q[1:]
		} else {
			q[0] = f
		}
		s.staCW[sta] = min(2*s.staCW[sta]+1, CWMax)
	}
	s.staPend[sta] = false
	return nil
}

// apTransmit builds the protocol's plan, transmits it, applies the oracle
// per subframe span, and requeues failures.
func (s *simulator) apTransmit(apIdx int) error {
	ap := &s.aps[apIdx]
	plan := s.buildAPPlan(ap)
	if plan == nil {
		ap.pending = false
		return nil
	}
	if s.cfg.SimultaneousACK && len(plan.subs) > 1 {
		// All ACKs share one slot (and collide there).
		plan.ackTime = SIFS + ACKAirtime(s.cfg.Rates)
	}
	occupancy := plan.airtime + plan.ackTime
	if s.cfg.UseRTSCTS {
		// RTS (with A-HDR for multi-receiver frames) + one CTS per
		// receiver + the SIFS gaps (Fig. 7).
		rts := ControlAirtime(RTSBytes, s.cfg.Rates)
		if len(plan.subs) > 1 {
			rts += AHDRSymbols * SymbolTime
		}
		occupancy += rts + time.Duration(len(plan.subs))*(SIFS+ControlAirtime(CTSBytes, s.cfg.Rates)) + SIFS
	}
	s.now += occupancy
	s.res.BusyTime += occupancy
	s.res.APTransmissions++
	s.res.APTxTime += plan.airtime
	s.mobs.apTx.Inc()
	s.mobs.aggSubframes.Add(int64(len(plan.subs)))
	s.mobs.queueDepth.Set(float64(len(ap.queue)))
	s.mobs.qDepth.Set(float64(len(ap.queue)))
	if !s.cfg.SimultaneousACK && len(plan.subs) > 1 {
		// §4.2 sequential ACK: one SIFS-separated slot per receiver.
		s.mobs.seqAcks.Add(int64(len(plan.subs)))
		s.mobs.tracer.EmitAt(int64(s.now), obs.EvSeqACK, int64(len(plan.subs)), 0)
	}
	if s.mobs.tracer != nil {
		var payload int64
		for _, sub := range plan.subs {
			for _, f := range sub.frames {
				payload += int64(f.size)
			}
		}
		s.mobs.tracer.EmitAt(int64(s.now), obs.EvAggTX, int64(len(plan.subs)), payload)
	}

	if len(s.inPlan) < s.cfg.NumSTAs {
		s.inPlan = make([]bool, s.cfg.NumSTAs)
	}
	for _, sub := range plan.subs {
		s.inPlan[sub.sta] = true
	}
	for sta := 0; sta < s.cfg.NumSTAs; sta++ {
		if s.inPlan[sta] {
			s.res.STARxOwnTime[sta] += plan.airtime
		} else {
			s.res.STAOverhear[sta] += plan.airtime
		}
	}
	for _, sub := range plan.subs {
		s.inPlan[sub.sta] = false
	}

	// Sequential-ACK ablation: with simultaneous ACKs and multiple
	// receivers, the AP captures at most one ACK; all other subframes are
	// treated as unconfirmed and retransmitted.
	captured := -1
	if s.cfg.SimultaneousACK && len(plan.subs) > 1 {
		captured = s.rng.Intn(len(plan.subs))
	}

	anySuccess := false
	requeue := s.requeue[:0]
	for subIdx, sub := range plan.subs {
		loc := s.locOf(sub.sta)
		sharedOK := false
		if sub.sharedFate && len(sub.frames) > 0 {
			var err error
			sharedOK, err = s.oracle.SubframeOK(loc, plan.rte, sub.spans[0][0], sub.spans[0][1])
			if err != nil {
				return err
			}
		}
		for i, f := range sub.frames {
			ok := sharedOK
			if !sub.sharedFate {
				var err error
				ok, err = s.oracle.SubframeOK(loc, plan.rte, sub.spans[i][0], sub.spans[i][1])
				if err != nil {
					return err
				}
			}
			if captured >= 0 && subIdx != captured {
				ok = false // ACK collided; the AP never learns of delivery
			}
			if ok {
				anySuccess = true
				s.deliver(f)
				continue
			}
			f.retries++
			s.res.Retries++
			s.mobs.retries.Inc()
			if f.retries > s.cfg.RetryLimit {
				s.res.Dropped++
				s.mobs.dropped.Inc()
				s.mobs.qDropped.Inc()
				s.perSTACnt[f.sta]--
				continue
			}
			requeue = append(requeue, f)
		}
	}
	// Failed frames go back to the queue head, preserving FIFO order: grow
	// the queue in place, shift the survivors right (copy is memmove-safe
	// for overlapping slices), and write the requeued frames at the front.
	if n := len(requeue); n > 0 {
		old := len(ap.queue)
		ap.queue = append(ap.queue, requeue...)
		copy(ap.queue[n:], ap.queue[:old])
		copy(ap.queue, requeue)
	}
	s.requeue = requeue[:0]
	if anySuccess {
		ap.cw = CWMin
	} else {
		ap.cw = min(2*ap.cw+1, CWMax)
	}
	ap.pending = false
	return nil
}

func (s *simulator) deliver(f frame) {
	s.res.Delivered++
	s.perSTACnt[f.sta]--
	s.downBytes += int64(f.size)
	s.perSTABytes[f.sta] += int64(f.size)
	s.staDelivered[f.sta].Add(int64(f.size))
	d := s.now - f.arrival
	s.delaySum += d
	s.delays = append(s.delays, d.Seconds())
	s.mobs.delivered.Inc()
	s.mobs.delayMs.Observe(d.Seconds() * 1e3)
}

func (s *simulator) finish() {
	dur := s.cfg.Duration.Seconds()
	s.res.DownlinkGoodputMbps = float64(s.downBytes) * 8 / dur / 1e6
	s.res.UplinkGoodputMbps = float64(s.upBytes) * 8 / dur / 1e6
	if s.res.Delivered > 0 {
		s.res.MeanDelay = s.delaySum / time.Duration(s.res.Delivered)
		cdf := stats.NewCDF(s.delays)
		s.res.P95Delay = time.Duration(cdf.Quantile(0.95) * float64(time.Second))
	}
	s.res.PerSTAGoodputMbps = make([]float64, s.cfg.NumSTAs)
	var sum, sumSq float64
	for i, b := range s.perSTABytes {
		r := float64(b) * 8 / dur / 1e6
		s.res.PerSTAGoodputMbps[i] = r
		sum += r
		sumSq += r * r
	}
	// Jain's index over stations that were offered traffic.
	n := float64(len(s.cfg.Downlink))
	if n > 0 && sumSq > 0 {
		s.res.FairnessIndex = sum * sum / (n * sumSq)
	}
	// Byte-based fairness, read back from the per-station obs counters.
	s.res.DeliveredBytesPerSTA = make([]int64, s.cfg.NumSTAs)
	var bSum, bSumSq float64
	for i, c := range s.staDelivered {
		b := c.Load()
		s.res.DeliveredBytesPerSTA[i] = b
		bSum += float64(b)
		bSumSq += float64(b) * float64(b)
	}
	if n > 0 && bSumSq > 0 {
		s.res.ByteFairnessIndex = bSum * bSum / (n * bSumSq)
	}
}
