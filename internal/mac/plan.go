package mac

import "time"

// buildAPPlan removes the frames of one transmission from the AP queue and
// lays them out as the protocol's PHY frame, computing per-MPDU symbol
// spans for the delivery oracle. It returns nil when nothing is sendable.
func (s *simulator) buildAPPlan(ap *apState) *txPlan {
	if len(ap.queue) == 0 {
		return nil
	}
	switch s.cfg.Protocol {
	case Legacy80211, WiFox:
		return s.planSingle(ap)
	case AMPDU:
		return s.planAMPDU(ap)
	case AMSDU:
		return s.planAMSDU(ap)
	case MUAggregation, Carpool:
		return s.planMultiUser(ap, s.cfg.Protocol == Carpool)
	default:
		return nil
	}
}

// take removes the frames at the selected queue indices (ascending order).
func take(ap *apState, selected []int) []frame {
	out := make([]frame, 0, len(selected))
	sel := make(map[int]bool, len(selected))
	for _, i := range selected {
		sel[i] = true
		out = append(out, ap.queue[i])
	}
	kept := ap.queue[:0]
	for i, f := range ap.queue {
		if !sel[i] {
			kept = append(kept, f)
		}
	}
	ap.queue = kept
	return out
}

// mpduSymbols returns the symbol count of one MPDU (header+payload+FCS).
func (s *simulator) mpduSymbols(size int) int {
	return DataSymbols(MACHeaderBytes+size+FCSBytes, s.cfg.Rates.DataMbps)
}

// planSingle sends the head frame alone (802.11 / WiFox).
func (s *simulator) planSingle(ap *apState) *txPlan {
	f := take(ap, []int{0})[0]
	n := s.mpduSymbols(f.size)
	return &txPlan{
		subs: []txSub{{
			sta:    f.sta,
			frames: []frame{f},
			spans:  [][2]int{{0, n}},
		}},
		airtime: PLCPTime + time.Duration(n)*SymbolTime + PropDelay,
		ackTime: SIFS + ACKAirtime(s.cfg.Rates),
	}
}

// planAMPDU aggregates the head frame's station's whole backlog (802.11n
// A-MPDU): one receiver, per-MPDU delimiters and spans, one block ACK.
func (s *simulator) planAMPDU(ap *apState) *txPlan {
	sta := ap.queue[0].sta
	var selected []int
	bytes := 0
	for i, f := range ap.queue {
		if f.sta != sta {
			continue
		}
		if bytes+f.size > s.cfg.MaxAggBytes {
			break
		}
		selected = append(selected, i)
		bytes += f.size
	}
	frames := take(ap, selected)
	sub := txSub{sta: sta}
	ndbps := dataBitsPerSymbol(s.cfg.Rates.DataMbps)
	cumBits := 16 // SERVICE
	for _, f := range frames {
		bits := 8 * (AMPDUDelimiterBytes + MACHeaderBytes + f.size + FCSBytes)
		start := cumBits / ndbps
		cumBits += bits
		end := (cumBits + ndbps - 1) / ndbps
		sub.frames = append(sub.frames, f)
		sub.spans = append(sub.spans, [2]int{start, end - start})
	}
	totalSym := (cumBits + 6 + ndbps - 1) / ndbps
	return &txPlan{
		subs:    []txSub{sub},
		airtime: PLCPTime + time.Duration(totalSym)*SymbolTime + PropDelay,
		ackTime: SIFS + BlockACKAirtime(s.cfg.Rates),
	}
}

// planAMSDU aggregates the head station's backlog under a single frame
// check sequence (802.11n A-MSDU, 7935-byte ceiling): one span covers the
// whole aggregate and one bad symbol group loses every contained frame.
func (s *simulator) planAMSDU(ap *apState) *txPlan {
	sta := ap.queue[0].sta
	var selected []int
	bytes := 0
	cap := min(s.cfg.MaxAggBytes, AMSDUMaxBytes)
	for i, f := range ap.queue {
		if f.sta != sta {
			continue
		}
		if bytes+f.size > cap {
			break
		}
		selected = append(selected, i)
		bytes += f.size
	}
	frames := take(ap, selected)
	// One MAC header + per-MSDU subheaders (14 bytes each) + one FCS.
	total := MACHeaderBytes + FCSBytes
	for _, f := range frames {
		total += 14 + f.size
	}
	nsym := DataSymbols(total, s.cfg.Rates.DataMbps)
	sub := txSub{sta: sta, sharedFate: true}
	for _, f := range frames {
		sub.frames = append(sub.frames, f)
		sub.spans = append(sub.spans, [2]int{0, nsym})
	}
	return &txPlan{
		subs:    []txSub{sub},
		airtime: PLCPTime + time.Duration(nsym)*SymbolTime + PropDelay,
		ackTime: SIFS + ACKAirtime(s.cfg.Rates),
	}
}

// planMultiUser aggregates the FIFO backlog across up to MaxReceivers
// stations (§4.1): Carpool pays a 2-symbol A-HDR plus one SIG per subframe
// and decodes with RTE; MU-Aggregation pays one 48-bit MAC address per
// receiver at the control rate and decodes with the standard estimate.
// Both return one ACK slot per receiver (sequential ACK, §4.2).
func (s *simulator) planMultiUser(ap *apState, carpool bool) *txPlan {
	staSlot := make(map[int]int)
	var groups [][]int // queue indices per subframe
	bytes := 0
	for i, f := range ap.queue {
		slot, seen := staSlot[f.sta]
		if !seen && len(groups) == s.cfg.MaxReceivers {
			continue
		}
		if bytes+f.size > s.cfg.MaxAggBytes {
			break
		}
		if !seen {
			slot = len(groups)
			staSlot[f.sta] = slot
			groups = append(groups, nil)
		}
		groups[slot] = append(groups[slot], i)
		bytes += f.size
	}
	if len(groups) == 0 {
		return nil
	}
	var selected []int
	for _, g := range groups {
		selected = append(selected, g...)
	}
	// take() requires ascending indices; groups preserve FIFO within a
	// subframe but interleave across subframes, so sort.
	sortInts(selected)
	taken := take(ap, selected)
	byIdx := make(map[int]frame, len(taken))
	for j, i := range selected {
		byIdx[i] = taken[j]
	}

	plan := &txPlan{rte: carpool}
	ndbps := dataBitsPerSymbol(s.cfg.Rates.DataMbps)
	cursor := 0
	if carpool {
		cursor = AHDRSymbols
	} else {
		// Explicit receiver list at the control rate (the §3 overhead
		// example: 48 bits per receiver).
		hdrBits := 48 * len(groups)
		cursor = (hdrBits + dataBitsPerSymbol(s.cfg.Rates.ControlMbps) - 1) /
			dataBitsPerSymbol(s.cfg.Rates.ControlMbps)
	}
	for _, g := range groups {
		// One FCS and one sequential-ACK slot per subframe: the subframe
		// is the retransmission unit, so every contained frame shares the
		// whole subframe's symbol span and fate (§4.2).
		sub := txSub{sta: byIdx[g[0]].sta, sharedFate: true}
		if carpool {
			cursor += SIGSymbols
		}
		cumBits := 16
		for _, i := range g {
			f := byIdx[i]
			cumBits += 8 * (MACHeaderBytes + f.size + FCSBytes)
			sub.frames = append(sub.frames, f)
		}
		subSyms := (cumBits + 6 + ndbps - 1) / ndbps
		for range sub.frames {
			sub.spans = append(sub.spans, [2]int{cursor, subSyms})
		}
		cursor += subSyms
		plan.subs = append(plan.subs, sub)
	}
	plan.airtime = PLCPTime + time.Duration(cursor)*SymbolTime + PropDelay
	plan.ackTime = time.Duration(len(plan.subs)) * (SIFS + ACKAirtime(s.cfg.Rates))
	return plan
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
