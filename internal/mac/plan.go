package mac

import "time"

// buildAPPlan removes the frames of one transmission from the AP queue and
// lays them out as the protocol's PHY frame, computing per-MPDU symbol
// spans for the delivery oracle. It returns nil when nothing is sendable.
//
// The returned plan and everything it references live in simulator scratch:
// exactly one plan is alive at a time, and the next buildAPPlan call
// recycles its storage. Frame ordering within and across subframes is
// byte-identical to the historical map-based planners (the golden-seed
// tests pin every Result field).
func (s *simulator) buildAPPlan(ap *apState) *txPlan {
	if len(ap.queue) == 0 {
		return nil
	}
	switch s.cfg.Protocol {
	case Legacy80211, WiFox:
		return s.planSingle(ap)
	case AMPDU:
		return s.planAMPDU(ap)
	case AMSDU:
		return s.planAMSDU(ap)
	case MUAggregation, Carpool:
		return s.planMultiUser(ap, s.cfg.Protocol == Carpool)
	default:
		return nil
	}
}

// resetPlan clears the shared plan and its flat frame/span backing for a
// new transmission.
func (s *simulator) resetPlan() *txPlan {
	s.planFrames = s.planFrames[:0]
	s.planSpans = s.planSpans[:0]
	p := &s.plan
	p.subs = p.subs[:0]
	p.airtime, p.ackTime, p.rte = 0, 0, false
	return p
}

// takeAscending copies the frames at the selected queue indices (ascending
// order) into the plan's flat frame scratch and compacts the queue in
// place. The returned slice stays valid until the next plan is built.
func (s *simulator) takeAscending(ap *apState, selected []int) []frame {
	start := len(s.planFrames)
	for _, i := range selected {
		s.planFrames = append(s.planFrames, ap.queue[i])
	}
	kept := ap.queue[:0]
	si := 0
	for i, f := range ap.queue {
		if si < len(selected) && selected[si] == i {
			si++
			continue
		}
		kept = append(kept, f)
	}
	ap.queue = kept
	return s.planFrames[start:]
}

// mpduSymbols returns the symbol count of one MPDU (header+payload+FCS).
func (s *simulator) mpduSymbols(size int) int {
	return DataSymbols(MACHeaderBytes+size+FCSBytes, s.cfg.Rates.DataMbps)
}

// planSingle sends the head frame alone (802.11 / WiFox).
func (s *simulator) planSingle(ap *apState) *txPlan {
	f := ap.queue[0]
	ap.queue = ap.queue[:copy(ap.queue, ap.queue[1:])]
	n := s.mpduSymbols(f.size)
	plan := s.resetPlan()
	s.planFrames = append(s.planFrames, f)
	s.planSpans = append(s.planSpans, [2]int{0, n})
	plan.subs = append(plan.subs, txSub{
		sta:    f.sta,
		frames: s.planFrames,
		spans:  s.planSpans,
	})
	plan.airtime = PLCPTime + time.Duration(n)*SymbolTime + PropDelay
	plan.ackTime = SIFS + ACKAirtime(s.cfg.Rates)
	return plan
}

// planAMPDU aggregates the head frame's station's whole backlog (802.11n
// A-MPDU): one receiver, per-MPDU delimiters and spans, one block ACK.
func (s *simulator) planAMPDU(ap *apState) *txPlan {
	sta := ap.queue[0].sta
	selected := s.selected[:0]
	bytes := 0
	for i, f := range ap.queue {
		if f.sta != sta {
			continue
		}
		if bytes+f.size > s.cfg.MaxAggBytes {
			break
		}
		selected = append(selected, i)
		bytes += f.size
	}
	s.selected = selected
	plan := s.resetPlan()
	frames := s.takeAscending(ap, selected)
	sub := txSub{sta: sta, frames: frames}
	ndbps := dataBitsPerSymbol(s.cfg.Rates.DataMbps)
	cumBits := 16 // SERVICE
	for _, f := range frames {
		bits := 8 * (AMPDUDelimiterBytes + MACHeaderBytes + f.size + FCSBytes)
		start := cumBits / ndbps
		cumBits += bits
		end := (cumBits + ndbps - 1) / ndbps
		s.planSpans = append(s.planSpans, [2]int{start, end - start})
	}
	sub.spans = s.planSpans
	totalSym := (cumBits + 6 + ndbps - 1) / ndbps
	plan.subs = append(plan.subs, sub)
	plan.airtime = PLCPTime + time.Duration(totalSym)*SymbolTime + PropDelay
	plan.ackTime = SIFS + BlockACKAirtime(s.cfg.Rates)
	return plan
}

// planAMSDU aggregates the head station's backlog under a single frame
// check sequence (802.11n A-MSDU, 7935-byte ceiling): one span covers the
// whole aggregate and one bad symbol group loses every contained frame.
func (s *simulator) planAMSDU(ap *apState) *txPlan {
	sta := ap.queue[0].sta
	selected := s.selected[:0]
	bytes := 0
	cap := min(s.cfg.MaxAggBytes, AMSDUMaxBytes)
	for i, f := range ap.queue {
		if f.sta != sta {
			continue
		}
		if bytes+f.size > cap {
			break
		}
		selected = append(selected, i)
		bytes += f.size
	}
	s.selected = selected
	plan := s.resetPlan()
	frames := s.takeAscending(ap, selected)
	// One MAC header + per-MSDU subheaders (14 bytes each) + one FCS.
	total := MACHeaderBytes + FCSBytes
	for _, f := range frames {
		total += 14 + f.size
	}
	nsym := DataSymbols(total, s.cfg.Rates.DataMbps)
	sub := txSub{sta: sta, sharedFate: true, frames: frames}
	for range frames {
		s.planSpans = append(s.planSpans, [2]int{0, nsym})
	}
	sub.spans = s.planSpans
	plan.subs = append(plan.subs, sub)
	plan.airtime = PLCPTime + time.Duration(nsym)*SymbolTime + PropDelay
	plan.ackTime = SIFS + ACKAirtime(s.cfg.Rates)
	return plan
}

// planMultiUser aggregates the FIFO backlog across up to MaxReceivers
// stations (§4.1): Carpool pays a 2-symbol A-HDR plus one SIG per subframe
// and decodes with RTE; MU-Aggregation pays one 48-bit MAC address per
// receiver at the control rate and decodes with the standard estimate.
// Both return one ACK slot per receiver (sequential ACK, §4.2).
func (s *simulator) planMultiUser(ap *apState, carpool bool) *txPlan {
	// groups[slot] collects one subframe's queue indices; the slot lookup
	// is a per-STA array (reset below, lazily sized for hand-built
	// simulators) and the inner index slices are recycled across calls.
	if len(s.staSlot) < s.cfg.NumSTAs {
		s.staSlot = make([]int, s.cfg.NumSTAs)
		for i := range s.staSlot {
			s.staSlot[i] = -1
		}
	}
	groups := s.groups[:0]
	bytes := 0
	for i, f := range ap.queue {
		slot := s.staSlot[f.sta]
		if slot < 0 && len(groups) == s.cfg.MaxReceivers {
			continue
		}
		if bytes+f.size > s.cfg.MaxAggBytes {
			break
		}
		if slot < 0 {
			slot = len(groups)
			s.staSlot[f.sta] = slot
			if len(groups) < cap(groups) {
				groups = groups[:slot+1]
				groups[slot] = groups[slot][:0]
			} else {
				groups = append(groups, nil)
			}
		}
		groups[slot] = append(groups[slot], i)
		bytes += f.size
	}
	s.groups = groups
	for _, g := range groups {
		s.staSlot[ap.queue[g[0]].sta] = -1
	}
	if len(groups) == 0 {
		return nil
	}

	plan := s.resetPlan()
	plan.rte = carpool
	ndbps := dataBitsPerSymbol(s.cfg.Rates.DataMbps)
	cursor := 0
	if carpool {
		cursor = AHDRSymbols
	} else {
		// Explicit receiver list at the control rate (the §3 overhead
		// example: 48 bits per receiver).
		hdrBits := 48 * len(groups)
		cursor = (hdrBits + dataBitsPerSymbol(s.cfg.Rates.ControlMbps) - 1) /
			dataBitsPerSymbol(s.cfg.Rates.ControlMbps)
	}
	for _, g := range groups {
		// One FCS and one sequential-ACK slot per subframe: the subframe
		// is the retransmission unit, so every contained frame shares the
		// whole subframe's symbol span and fate (§4.2). Frames are read
		// from the queue before the compaction below invalidates indices.
		sub := txSub{sta: ap.queue[g[0]].sta, sharedFate: true}
		if carpool {
			cursor += SIGSymbols
		}
		cumBits := 16
		fStart := len(s.planFrames)
		for _, i := range g {
			f := ap.queue[i]
			cumBits += 8 * (MACHeaderBytes + f.size + FCSBytes)
			s.planFrames = append(s.planFrames, f)
		}
		sub.frames = s.planFrames[fStart:]
		subSyms := (cumBits + 6 + ndbps - 1) / ndbps
		spStart := len(s.planSpans)
		for range sub.frames {
			s.planSpans = append(s.planSpans, [2]int{cursor, subSyms})
		}
		sub.spans = s.planSpans[spStart:]
		cursor += subSyms
		plan.subs = append(plan.subs, sub)
	}
	s.removeGrouped(ap, groups)
	plan.airtime = PLCPTime + time.Duration(cursor)*SymbolTime + PropDelay
	plan.ackTime = time.Duration(len(plan.subs)) * (SIFS + ACKAirtime(s.cfg.Rates))
	return plan
}

// removeGrouped compacts the AP queue, dropping every index captured in
// groups, in one pass over a reusable bitset (indices interleave across
// subframes, so the ascending-walk compaction does not apply).
func (s *simulator) removeGrouped(ap *apState, groups [][]int) {
	nw := (len(ap.queue) + 63) / 64
	if cap(s.qBits) < nw {
		s.qBits = make([]uint64, nw)
	}
	bits := s.qBits[:nw]
	for i := range bits {
		bits[i] = 0
	}
	for _, g := range groups {
		for _, i := range g {
			bits[i>>6] |= 1 << (i & 63)
		}
	}
	kept := ap.queue[:0]
	for i, f := range ap.queue {
		if bits[i>>6]>>(i&63)&1 == 1 {
			continue
		}
		kept = append(kept, f)
	}
	ap.queue = kept
}
