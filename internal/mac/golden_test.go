package mac

import (
	"flag"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"carpool/internal/traffic"
)

func newGoldenRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// goldenCapture prints the current Results as Go literals instead of
// comparing, for regenerating the table below after an intentional
// behavioral change: go test ./internal/mac -run Golden -capture-golden -v
var goldenCapture = flag.Bool("capture-golden", false, "print golden MAC results instead of comparing")

// goldenConfigs exercises every protocol plan builder plus the latency,
// retry, multi-AP and ablation paths with fixed seeds, so any change to the
// simulator's arithmetic or RNG consumption order shows up as a golden
// mismatch. The allocation-purge refactor must keep all of these
// bit-identical.
func goldenConfigs() map[string]Config {
	mk := func(seed int64, n int, bytes int, every time.Duration, dur time.Duration) [][]traffic.Arrival {
		rng := newGoldenRNG(seed)
		out := make([][]traffic.Arrival, n)
		for i := range out {
			out[i] = traffic.CBRFlow(rng, bytes, every, dur)
		}
		return out
	}
	const dur = 400 * time.Millisecond
	cfgs := map[string]Config{
		"legacy": {
			Protocol: Legacy80211, NumSTAs: 4, Duration: dur, Seed: 3,
			Downlink: mk(3, 4, 400, 4*time.Millisecond, dur),
			Uplink:   mk(4, 2, 200, 9*time.Millisecond, dur),
		},
		"wifox": {
			Protocol: WiFox, NumSTAs: 8, Duration: dur, Seed: 5,
			Downlink: mk(5, 8, 600, 3*time.Millisecond, dur),
			SaturatedUplink: true,
		},
		"ampdu": {
			Protocol: AMPDU, NumSTAs: 6, Duration: dur, Seed: 11,
			Downlink: mk(11, 6, 1200, 5*time.Millisecond, dur),
			Uplink:   mk(12, 6, 120, 20*time.Millisecond, dur),
		},
		"amsdu": {
			Protocol: AMSDU, NumSTAs: 6, Duration: dur, Seed: 13,
			Downlink: mk(13, 6, 900, 5*time.Millisecond, dur),
			SaturatedUplink: true,
		},
		"muagg-rtscts": {
			Protocol: MUAggregation, NumSTAs: 10, Duration: dur, Seed: 17,
			Downlink: mk(17, 10, 500, 6*time.Millisecond, dur),
			SaturatedUplink: true, UseRTSCTS: true,
		},
		"carpool": {
			Protocol: Carpool, NumSTAs: 12, NumAPs: 2, Duration: dur, Seed: 7,
			Downlink: mk(7, 12, 300, 5*time.Millisecond, dur),
			SaturatedUplink: true, MaxLatency: 60 * time.Millisecond,
		},
		"carpool-simack": {
			Protocol: Carpool, NumSTAs: 9, Duration: dur, Seed: 23,
			Downlink: mk(23, 9, 700, 4*time.Millisecond, dur),
			SaturatedUplink: true, SimultaneousACK: true,
		},
	}
	// Lossy oracles force the retry/requeue paths.
	for name, p := range map[string]float64{
		"legacy": 0.92, "ampdu": 0.9, "carpool": 0.88, "muagg-rtscts": 0.95,
	} {
		cfg := cfgs[name]
		oracle, err := NewFixedOracle(p, cfg.Seed)
		if err != nil {
			panic(err)
		}
		cfg.Oracle = oracle
		cfgs[name] = cfg
	}
	return cfgs
}

// TestGoldenSeedResults pins every Result field of the fixed-seed runs
// above. The values were captured before the allocation-purge refactor of
// the simulator; the purge must not change a single field.
func TestGoldenSeedResults(t *testing.T) {
	cfgs := goldenConfigs()
	if *goldenCapture {
		for name, cfg := range cfgs {
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Printf("%q: %#v,\n", name, *res)
		}
		t.Skip("captured")
	}
	for name, want := range goldenResults {
		cfg, ok := cfgs[name]
		if !ok {
			t.Fatalf("golden entry %q has no config", name)
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(*res, want) {
			t.Errorf("%s: Result diverged from golden capture\n got %#v\nwant %#v", name, *res, want)
		}
	}
	if len(goldenResults) != len(cfgs) {
		t.Errorf("golden table has %d entries for %d configs", len(goldenResults), len(cfgs))
	}
}
