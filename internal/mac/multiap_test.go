package mac

import (
	"testing"
	"time"

	"carpool/internal/traffic"
)

func TestTwoAPsShareTheChannel(t *testing.T) {
	// The paper's simulation topology: two APs in one carrier-sense range.
	// Stations split between them; both must deliver.
	cfg := cbrScenario(t, Carpool, 20, 81)
	cfg.NumAPs = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered with two APs")
	}
	// Every station is served: stations of AP 0 (even) and AP 1 (odd).
	evenBytes, oddBytes := 0.0, 0.0
	for i, r := range res.PerSTAGoodputMbps {
		if i%2 == 0 {
			evenBytes += r
		} else {
			oddBytes += r
		}
	}
	if evenBytes == 0 || oddBytes == 0 {
		t.Errorf("one AP starved: even %.2f, odd %.2f Mbit/s", evenBytes, oddBytes)
	}
}

func TestTwoAPsCarpoolStillBeatsLegacy(t *testing.T) {
	mk := func(p Protocol) Config {
		cfg := cbrScenario(t, p, 24, 83)
		cfg.NumAPs = 2
		return cfg
	}
	legacy, err := Run(mk(Legacy80211))
	if err != nil {
		t.Fatal(err)
	}
	carpool, err := Run(mk(Carpool))
	if err != nil {
		t.Fatal(err)
	}
	if carpool.DownlinkGoodputMbps < 2*legacy.DownlinkGoodputMbps {
		t.Errorf("with two APs, Carpool %.2f not >= 2x legacy %.2f",
			carpool.DownlinkGoodputMbps, legacy.DownlinkGoodputMbps)
	}
}

func TestNumAPsValidation(t *testing.T) {
	if _, err := Run(Config{Protocol: Carpool, NumSTAs: 2, Duration: time.Second,
		NumAPs: 5}); err == nil {
		t.Error("accepted more APs than STAs")
	}
	if _, err := Run(Config{Protocol: Carpool, NumSTAs: 2, Duration: time.Second,
		NumAPs: -1}); err == nil {
		t.Error("accepted negative AP count")
	}
}

func TestSingleAPUnchangedByRefactor(t *testing.T) {
	// NumAPs zero and one are the same configuration.
	a, err := Run(cbrScenario(t, AMPDU, 10, 85))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cbrScenario(t, AMPDU, 10, 85)
	cfg.NumAPs = 1
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.DownlinkGoodputMbps != b.DownlinkGoodputMbps {
		t.Error("explicit NumAPs=1 diverged from the default")
	}
}

func TestTwoAPsAggregateIndependently(t *testing.T) {
	// A Carpool AP may only aggregate frames from its own queue: with
	// stations 0..3 on AP0 and 4..7 on AP1 (round robin: even/odd), no
	// subframe may mix stations across APs. Verified indirectly: drive
	// only odd stations and check AP0 never transmits.
	const n = 8
	down := make([][]traffic.Arrival, n)
	for i := 1; i < n; i += 2 {
		down[i] = []traffic.Arrival{{Time: 0, Size: 200}, {Time: 0, Size: 200}}
	}
	res, err := Run(Config{
		Protocol: Carpool, NumSTAs: n, NumAPs: 2, Duration: 100 * time.Millisecond,
		Seed: 87, Downlink: down,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 2 {
		if res.PerSTAGoodputMbps[i] != 0 {
			t.Errorf("even station %d received traffic that belongs to AP1's stations", i)
		}
	}
	if res.Delivered != n/2*2 {
		t.Errorf("delivered %d frames, want %d", res.Delivered, n)
	}
}
