// Package mac implements the trace-driven event-based MAC simulator of the
// paper's §7.2: a CSMA/CA DCF medium shared by one AP and N stations, with
// five protocol behaviours — plain IEEE 802.11, 802.11n A-MPDU aggregation,
// multi-user aggregation without RTE, WiFox downlink prioritization, and
// Carpool. Frame delivery is decided by the PHY decode traces
// (internal/trace), mirroring the paper's methodology.
package mac

import (
	"fmt"
	"math"
	"time"
)

// PHY/MAC parameters of Table 2.
const (
	SlotTime  = 9 * time.Microsecond
	SIFS      = 10 * time.Microsecond
	DIFS      = 28 * time.Microsecond
	CWMin     = 15   // slots
	CWMax     = 1023 // slots
	PLCPTime  = 28 * time.Microsecond
	PropDelay = 1 * time.Microsecond

	// SymbolTime is the OFDM symbol duration.
	SymbolTime = 4 * time.Microsecond

	// Frame overheads in bytes.
	MACHeaderBytes = 28
	FCSBytes       = 4
	ACKBytes       = 14
	BlockACKBytes  = 32
	RTSBytes       = 20
	CTSBytes       = 14

	// AMPDUDelimiterBytes separates MPDUs inside an A-MPDU.
	AMPDUDelimiterBytes = 4

	// AHDRSymbols is Carpool's aggregation header length.
	AHDRSymbols = 2
	// SIGSymbols per Carpool subframe.
	SIGSymbols = 1

	// DefaultRetryLimit is the 802.11 long retry limit.
	DefaultRetryLimit = 7
)

// Rates groups the PHY rates a simulation uses.
type Rates struct {
	// DataMbps is the payload rate (65 Mbit/s in the paper's MAC study).
	DataMbps float64
	// ControlMbps is the rate for ACK/RTS/CTS and legacy headers.
	ControlMbps float64
}

// DefaultRates matches §7.2.2.
func DefaultRates() Rates { return Rates{DataMbps: 65, ControlMbps: 24} }

// dataBitsPerSymbol returns N_DBPS at a rate (rate Mbit/s x 4 µs).
func dataBitsPerSymbol(mbps float64) int {
	return int(math.Round(mbps * 4))
}

// DataSymbols returns the DATA-field length in OFDM symbols for a MAC
// payload of the given size: SERVICE(16) + bits + TAIL(6), padded.
func DataSymbols(payloadBytes int, mbps float64) int {
	bits := 16 + 8*payloadBytes + 6
	ndbps := dataBitsPerSymbol(mbps)
	return (bits + ndbps - 1) / ndbps
}

// FrameAirtime is the airtime of one MAC frame (header + payload + FCS) at
// the data rate, including PLCP and propagation.
func FrameAirtime(payloadBytes int, r Rates) time.Duration {
	n := DataSymbols(MACHeaderBytes+payloadBytes+FCSBytes, r.DataMbps)
	return PLCPTime + time.Duration(n)*SymbolTime + PropDelay
}

// ControlAirtime is the airtime of a control frame at the control rate.
func ControlAirtime(bytes int, r Rates) time.Duration {
	n := DataSymbols(bytes, r.ControlMbps)
	return PLCPTime + time.Duration(n)*SymbolTime + PropDelay
}

// ACKAirtime is a normal ACK's airtime.
func ACKAirtime(r Rates) time.Duration { return ControlAirtime(ACKBytes, r) }

// BlockACKAirtime is an 802.11n block ACK's airtime.
func BlockACKAirtime(r Rates) time.Duration { return ControlAirtime(BlockACKBytes, r) }

// Protocol selects the MAC behaviour under study.
type Protocol int

// The five protocols of the evaluation.
const (
	// Legacy80211 transmits one MAC frame per channel access.
	Legacy80211 Protocol = iota + 1
	// AMPDU aggregates queued frames for a single station (802.11n).
	AMPDU
	// MUAggregation aggregates frames for multiple stations but decodes
	// with the standard (preamble-only) channel estimate and lists every
	// receiver's MAC address in a low-rate PHY header.
	MUAggregation
	// WiFox prioritizes the AP's channel access when its queue backs up,
	// without aggregation.
	WiFox
	// Carpool aggregates for multiple stations with the Bloom-filter A-HDR
	// and decodes with real-time channel estimation.
	Carpool
	// AMSDU aggregates queued frames for a single station under one frame
	// check sequence (802.11n MSDU aggregation): any error loses the whole
	// aggregate. The paper's VoIP discussion (§7.2.2) describes this
	// shared-fate behaviour for its single-receiver aggregation baseline.
	AMSDU
)

// String names the protocol as it appears in the figures.
func (p Protocol) String() string {
	switch p {
	case Legacy80211:
		return "802.11"
	case AMPDU:
		return "A-MPDU"
	case MUAggregation:
		return "MU-Aggregation"
	case WiFox:
		return "WiFox"
	case Carpool:
		return "Carpool"
	case AMSDU:
		return "A-MSDU"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Valid reports whether p is one of the five protocols.
func (p Protocol) Valid() bool { return p >= Legacy80211 && p <= AMSDU }

// Protocols lists the paper's five comparison protocols in the figures'
// order. AMSDU is available separately as a sixth behaviour.
func Protocols() []Protocol {
	return []Protocol{Carpool, MUAggregation, AMPDU, Legacy80211, WiFox}
}

// AllProtocols lists every implemented behaviour, including A-MSDU.
func AllProtocols() []Protocol {
	return []Protocol{Carpool, MUAggregation, AMPDU, AMSDU, Legacy80211, WiFox}
}

// AMSDUMaxBytes is the 802.11n HT A-MSDU size ceiling.
const AMSDUMaxBytes = 7935
