package mac

import (
	"testing"
	"time"

	"carpool/internal/traffic"
)

// TestRunAllocBudget pins the simulator's allocation behavior after the
// scratch-buffer purge: one 400 ms carpool run with lossy delivery (the
// retry/requeue-heavy path) must stay within a small fixed budget, where it
// previously allocated per contention slot and per transmission. The budget
// leaves headroom for setup (per-run registries, result slices) and
// amortized queue/delay growth, while sitting far below the purged regime.
func TestRunAllocBudget(t *testing.T) {
	rng := newGoldenRNG(41)
	const dur = 400 * time.Millisecond
	down := make([][]traffic.Arrival, 10)
	for i := range down {
		down[i] = traffic.CBRFlow(rng, 400, 3*time.Millisecond, dur)
	}
	oracle, err := NewFixedOracle(0.9, 41)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Protocol: Carpool, NumSTAs: 10, Duration: dur, Seed: 41,
		Downlink: down, SaturatedUplink: true, Oracle: oracle,
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 400
	if allocs > budget {
		t.Errorf("Run allocates %.0f/op, budget %d", allocs, budget)
	}
}
