package mac

import (
	"math/rand"
	"testing"
	"time"

	"carpool/internal/traffic"
)

func TestQueueCapDropsOverflow(t *testing.T) {
	// One station offered far more than the queue holds: drops counted,
	// delivery bounded.
	var flood []traffic.Arrival
	for i := 0; i < 2000; i++ {
		flood = append(flood, traffic.Arrival{Time: 0, Size: 120})
	}
	res, err := Run(Config{
		Protocol: Legacy80211, NumSTAs: 1, Duration: 100 * time.Millisecond,
		Seed: 1, QueueCap: 50, Downlink: [][]traffic.Arrival{flood},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Error("2000 simultaneous arrivals into a 50-frame queue dropped nothing")
	}
	if res.Delivered+res.Dropped > 2000 {
		t.Errorf("delivered %d + dropped %d exceeds offered", res.Delivered, res.Dropped)
	}
}

func TestFrameConservation(t *testing.T) {
	// Every offered downlink frame ends up delivered, dropped, expired, or
	// still queued — never duplicated or lost.
	cfg := cbrScenario(t, Carpool, 15, 67)
	offered := 0
	for _, flow := range cfg.Downlink {
		offered += len(flow)
	}
	cfg.MaxLatency = 100 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	accounted := res.Delivered + res.Dropped + res.Expired
	if accounted > offered {
		t.Errorf("accounted %d frames > offered %d (duplication)", accounted, offered)
	}
	// With a 100 ms deadline over a 3 s run, almost everything should be
	// resolved one way or another; a small residue may remain queued or
	// un-ingested at the horizon.
	if accounted < offered*8/10 {
		t.Errorf("only %d of %d frames accounted for", accounted, offered)
	}
}

func TestUplinkGoodputCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	up := make([][]traffic.Arrival, 3)
	for i := range up {
		up[i] = traffic.CBRFlow(rng, 500, 20*time.Millisecond, time.Second)
	}
	res, err := Run(Config{
		Protocol: Legacy80211, NumSTAs: 3, Duration: time.Second, Seed: 71,
		Uplink: up,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UplinkGoodputMbps <= 0 {
		t.Error("uplink goodput not counted")
	}
	if res.DownlinkGoodputMbps != 0 {
		t.Error("phantom downlink goodput")
	}
}

func TestSTAOverhearAccounting(t *testing.T) {
	// Every AP transmission is either received or overheard by each STA.
	cfg := cbrScenario(t, Carpool, 6, 73)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.APTxTime <= 0 {
		t.Fatal("no AP airtime")
	}
	for i := 0; i < 6; i++ {
		total := res.STARxOwnTime[i] + res.STAOverhear[i]
		if total != res.APTxTime {
			t.Errorf("STA %d: rx %v + overhear %v != AP tx %v",
				i, res.STARxOwnTime[i], res.STAOverhear[i], res.APTxTime)
		}
	}
}
