package mac

import (
	"testing"
	"time"
)

func TestSimultaneousACKHurtsCarpool(t *testing.T) {
	// The §4.2 ablation: without sequential ACKs, multi-receiver frames
	// lose most of their confirmations to ACK collisions.
	seq, err := Run(cbrScenario(t, Carpool, 25, 41))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cbrScenario(t, Carpool, 25, 41)
	cfg.SimultaneousACK = true
	sim, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sim.DownlinkGoodputMbps >= seq.DownlinkGoodputMbps {
		t.Errorf("simultaneous ACK %.2f Mbps not below sequential %.2f",
			sim.DownlinkGoodputMbps, seq.DownlinkGoodputMbps)
	}
	if sim.Retries <= seq.Retries {
		t.Errorf("simultaneous ACK retries %d not above sequential %d",
			sim.Retries, seq.Retries)
	}
}

func TestSimultaneousACKNoEffectOnSingleReceiver(t *testing.T) {
	// With one receiver per frame there is nothing to collide.
	base, err := Run(cbrScenario(t, Legacy80211, 10, 43))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cbrScenario(t, Legacy80211, 10, 43)
	cfg.SimultaneousACK = true
	same, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Delivered != same.Delivered {
		t.Errorf("single-receiver delivery changed: %d vs %d", base.Delivered, same.Delivered)
	}
}

func TestRTSCTSCostsAirtime(t *testing.T) {
	// RTS/CTS shields hidden terminals at an airtime cost; with everyone
	// in carrier-sense range (this simulator's topology) it can only
	// reduce goodput.
	plain, err := Run(cbrScenario(t, Carpool, 25, 47))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cbrScenario(t, Carpool, 25, 47)
	cfg.UseRTSCTS = true
	shielded, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if shielded.BusyTime <= plain.BusyTime &&
		shielded.DownlinkGoodputMbps >= plain.DownlinkGoodputMbps {
		t.Error("RTS/CTS cost no airtime")
	}
	// The protection must not break delivery outright.
	if shielded.DownlinkGoodputMbps < plain.DownlinkGoodputMbps/2 {
		t.Errorf("RTS/CTS goodput %.2f collapsed vs %.2f",
			shielded.DownlinkGoodputMbps, plain.DownlinkGoodputMbps)
	}
}

func TestAMSDUTapersUnderContention(t *testing.T) {
	// The single-FCS baseline loses whole aggregates as they grow — the
	// paper's Fig. 15 taper. Compare against per-MPDU A-MPDU on the same
	// biased channel.
	mk := func(proto Protocol) Config {
		cfg := cbrScenario(t, proto, 25, 53)
		cfg.Oracle = NewBiasedOracle(0.004, 53)
		return cfg
	}
	ampdu, err := Run(mk(AMPDU))
	if err != nil {
		t.Fatal(err)
	}
	amsdu, err := Run(mk(AMSDU))
	if err != nil {
		t.Fatal(err)
	}
	if amsdu.DownlinkGoodputMbps >= ampdu.DownlinkGoodputMbps {
		t.Errorf("A-MSDU %.2f Mbps not below A-MPDU %.2f under BER bias",
			amsdu.DownlinkGoodputMbps, ampdu.DownlinkGoodputMbps)
	}
}

func TestPlanAMSDUCeiling(t *testing.T) {
	s := &simulator{cfg: Config{Protocol: AMSDU, NumSTAs: 1, NumAPs: 1,
		Rates: DefaultRates(), MaxAggBytes: 64 << 10}, aps: make([]apState, 1)}
	for i := 0; i < 20; i++ {
		s.aps[0].queue = append(s.aps[0].queue, frame{sta: 0, size: 1400})
	}
	plan := s.buildAPPlan(&s.aps[0])
	if plan == nil || len(plan.subs) != 1 {
		t.Fatal("no plan")
	}
	total := 0
	for _, f := range plan.subs[0].frames {
		total += f.size
	}
	if total > AMSDUMaxBytes {
		t.Errorf("aggregate %d bytes exceeds the %d ceiling", total, AMSDUMaxBytes)
	}
	if !plan.subs[0].sharedFate {
		t.Error("A-MSDU subframe must be shared-fate")
	}
	if len(s.aps[0].queue) != 20-len(plan.subs[0].frames) {
		t.Error("queue accounting wrong")
	}
}

func TestCarpoolFairness(t *testing.T) {
	// §8: FIFO aggregation serves every station; Jain's index over
	// per-station goodput should be near 1 when all stations are offered
	// identical traffic.
	res, err := Run(cbrScenario(t, Carpool, 20, 61))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerSTAGoodputMbps) != 20 {
		t.Fatalf("%d per-STA entries", len(res.PerSTAGoodputMbps))
	}
	if res.FairnessIndex < 0.9 {
		t.Errorf("Carpool fairness index %.3f, want >= 0.9", res.FairnessIndex)
	}
	var total float64
	for _, r := range res.PerSTAGoodputMbps {
		total += r
	}
	if diff := total - res.DownlinkGoodputMbps; diff < -0.01 || diff > 0.01 {
		t.Errorf("per-STA goodput sums to %.3f, aggregate %.3f", total, res.DownlinkGoodputMbps)
	}

	// Byte-based fairness from the per-station obs counters must agree:
	// goodput is delivered bytes scaled by a shared constant, so the Jain
	// indices are mathematically identical.
	if res.ByteFairnessIndex < 0.9 {
		t.Errorf("Carpool byte fairness index %.3f, want >= 0.9", res.ByteFairnessIndex)
	}
	if d := res.ByteFairnessIndex - res.FairnessIndex; d < -1e-9 || d > 1e-9 {
		t.Errorf("byte fairness %.6f differs from rate fairness %.6f", res.ByteFairnessIndex, res.FairnessIndex)
	}
	if len(res.DeliveredBytesPerSTA) != 20 {
		t.Fatalf("%d per-STA byte entries", len(res.DeliveredBytesPerSTA))
	}
	var bytes int64
	for _, b := range res.DeliveredBytesPerSTA {
		bytes += b
	}
	wantMbps := float64(bytes) * 8 / cbrScenario(t, Carpool, 20, 61).Duration.Seconds() / 1e6
	if d := wantMbps - res.DownlinkGoodputMbps; d < -0.01 || d > 0.01 {
		t.Errorf("counter bytes imply %.3f Mbit/s, aggregate %.3f", wantMbps, res.DownlinkGoodputMbps)
	}
}

func TestFairnessIndexZeroWhenNothingDelivered(t *testing.T) {
	res, err := Run(Config{Protocol: Carpool, NumSTAs: 3, Duration: time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FairnessIndex != 0 {
		t.Errorf("idle network fairness %v, want 0", res.FairnessIndex)
	}
}

func TestPlanMultiUserSharedFateSpans(t *testing.T) {
	s := &simulator{cfg: Config{Protocol: Carpool, NumSTAs: 3, NumAPs: 1,
		Rates: DefaultRates(), MaxAggBytes: 64 << 10, MaxReceivers: 8}, aps: make([]apState, 1)}
	s.aps[0].queue = []frame{
		{sta: 0, size: 120}, {sta: 1, size: 120}, {sta: 0, size: 120}, {sta: 2, size: 500},
	}
	plan := s.buildAPPlan(&s.aps[0])
	if plan == nil || len(plan.subs) != 3 {
		t.Fatalf("expected 3 subframes, got %+v", plan)
	}
	if !plan.rte {
		t.Error("Carpool plan must use RTE")
	}
	for _, sub := range plan.subs {
		if !sub.sharedFate {
			t.Error("Carpool subframes are the retransmission unit (shared fate)")
		}
		for i := 1; i < len(sub.spans); i++ {
			if sub.spans[i] != sub.spans[0] {
				t.Error("frames within a subframe must share its span")
			}
		}
	}
	// Subframe 1 holds STA 0's two frames, in order.
	if len(plan.subs[0].frames) != 2 || plan.subs[0].frames[0].sta != 0 {
		t.Error("FIFO grouping wrong")
	}
	// Spans are sequential: each subframe starts after the previous.
	prevEnd := 0
	for _, sub := range plan.subs {
		if sub.spans[0][0] < prevEnd {
			t.Error("subframe spans overlap")
		}
		prevEnd = sub.spans[0][0] + sub.spans[0][1]
	}
}
