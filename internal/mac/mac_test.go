package mac

import (
	"math/rand"
	"testing"
	"time"

	"carpool/internal/traffic"
)

func TestTable2Parameters(t *testing.T) {
	// Table 2 of the paper.
	if SlotTime != 9*time.Microsecond {
		t.Error("slot time")
	}
	if SIFS != 10*time.Microsecond {
		t.Error("SIFS")
	}
	if DIFS != 28*time.Microsecond {
		t.Error("DIFS")
	}
	if CWMin != 15 || CWMax != 1023 {
		t.Error("contention windows")
	}
	if PLCPTime != 28*time.Microsecond {
		t.Error("PLCP header")
	}
	if PropDelay != time.Microsecond {
		t.Error("propagation delay")
	}
}

func TestAirtimeComputation(t *testing.T) {
	r := DefaultRates()
	// 65 Mbit/s -> 260 bits/symbol. A 120-byte VoIP frame:
	// 16 + (28+120+4)*8 + 6 = 1238 bits -> 5 symbols.
	if got := DataSymbols(MACHeaderBytes+120+FCSBytes, r.DataMbps); got != 5 {
		t.Errorf("VoIP data symbols %d, want 5", got)
	}
	want := PLCPTime + 5*SymbolTime + PropDelay
	if got := FrameAirtime(120, r); got != want {
		t.Errorf("frame airtime %v, want %v", got, want)
	}
	// ACK: 16 + 14*8 + 6 = 134 bits at 96 bits/sym -> 2 symbols.
	if got := ACKAirtime(r); got != PLCPTime+2*SymbolTime+PropDelay {
		t.Errorf("ACK airtime %v", got)
	}
	if BlockACKAirtime(r) <= ACKAirtime(r) {
		t.Error("block ACK should be longer than ACK")
	}
}

func TestProtocolString(t *testing.T) {
	names := map[Protocol]string{
		Legacy80211: "802.11", AMPDU: "A-MPDU", MUAggregation: "MU-Aggregation",
		WiFox: "WiFox", Carpool: "Carpool", AMSDU: "A-MSDU", Protocol(9): "Protocol(9)",
	}
	for p, want := range names {
		if got := p.String(); got != want {
			t.Errorf("%d -> %q, want %q", int(p), got, want)
		}
	}
	if len(Protocols()) != 5 {
		t.Error("expected 5 comparison protocols")
	}
	if len(AllProtocols()) != 6 {
		t.Error("expected 6 implemented protocols")
	}
	if Protocol(0).Valid() || Protocol(7).Valid() {
		t.Error("invalid protocols reported valid")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Protocol: Carpool},
		{Protocol: Carpool, NumSTAs: 5},
		{Protocol: Carpool, NumSTAs: 2, Duration: time.Second,
			Downlink: make([][]traffic.Arrival, 5)},
		{Protocol: Carpool, NumSTAs: 2, Duration: time.Second,
			STALocations: []int{0}},
		{Protocol: Protocol(9), NumSTAs: 2, Duration: time.Second},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestFixedOracle(t *testing.T) {
	if _, err := NewFixedOracle(-0.1, 1); err == nil {
		t.Error("accepted negative probability")
	}
	if _, err := NewFixedOracle(1.5, 1); err == nil {
		t.Error("accepted probability > 1")
	}
	o, err := NewFixedOracle(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ok, err := o.SubframeOK(0, false, 0, 5)
		if err != nil || !ok {
			t.Fatal("lossless oracle failed a subframe")
		}
	}
	half, err := NewFixedOracle(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	okCount := 0
	for i := 0; i < 1000; i++ {
		if ok, _ := half.SubframeOK(0, false, 0, 5); ok {
			okCount++
		}
	}
	if okCount < 430 || okCount > 570 {
		t.Errorf("p=0.5 oracle delivered %d/1000", okCount)
	}
}

func TestBiasedOracle(t *testing.T) {
	o := NewBiasedOracle(0.01, 3)
	// RTE always succeeds.
	for i := 0; i < 10; i++ {
		if ok, _ := o.SubframeOK(0, true, 90, 10); !ok {
			t.Fatal("RTE span failed")
		}
	}
	// Early spans mostly succeed, late spans mostly fail.
	early, late := 0, 0
	for i := 0; i < 500; i++ {
		if ok, _ := o.SubframeOK(0, false, 0, 4); ok {
			early++
		}
		if ok, _ := o.SubframeOK(0, false, 90, 10); ok {
			late++
		}
	}
	if early < 450 {
		t.Errorf("early spans delivered %d/500", early)
	}
	if late > 200 {
		t.Errorf("late spans delivered %d/500", late)
	}
}

// cbrScenario builds the paper's large-audience regime: VoIP-rate downlink
// per STA and saturated uplink contention.
func cbrScenario(t *testing.T, proto Protocol, nSTA int, seed int64) Config {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const dur = 3 * time.Second
	down := make([][]traffic.Arrival, nSTA)
	for i := range down {
		down[i] = traffic.CBRFlow(rng, 120, 10*time.Millisecond, dur)
	}
	return Config{
		Protocol:        proto,
		NumSTAs:         nSTA,
		Duration:        dur,
		Seed:            seed,
		Downlink:        down,
		SaturatedUplink: true,
	}
}

func TestRunProducesSaneMetrics(t *testing.T) {
	res, err := Run(cbrScenario(t, Legacy80211, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if res.DownlinkGoodputMbps <= 0 || res.DownlinkGoodputMbps > 65 {
		t.Errorf("goodput %v Mbps implausible", res.DownlinkGoodputMbps)
	}
	if res.MeanDelay <= 0 {
		t.Error("mean delay should be positive")
	}
	if res.P95Delay < res.MeanDelay/4 {
		t.Error("P95 delay implausibly small")
	}
	if res.BusyTime <= 0 || res.BusyTime > 3*time.Second {
		t.Errorf("busy time %v", res.BusyTime)
	}
	if res.APTransmissions == 0 || res.STATransmissions == 0 {
		t.Error("no transmissions recorded")
	}
	if len(res.STATxTime) != 5 {
		t.Error("per-STA accounting missing")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(cbrScenario(t, Carpool, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cbrScenario(t, Carpool, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.DownlinkGoodputMbps != b.DownlinkGoodputMbps ||
		a.Collisions != b.Collisions {
		t.Error("same seed produced different results")
	}
}

func TestCarpoolBeatsLegacyUnderContention(t *testing.T) {
	// The core MAC claim: with many contending STAs, Carpool's multi-user
	// aggregation delivers several times the goodput of one-frame-per-
	// access 802.11, at lower delay.
	nSTA := 25
	legacy, err := Run(cbrScenario(t, Legacy80211, nSTA, 11))
	if err != nil {
		t.Fatal(err)
	}
	carpool, err := Run(cbrScenario(t, Carpool, nSTA, 11))
	if err != nil {
		t.Fatal(err)
	}
	if carpool.DownlinkGoodputMbps < 2*legacy.DownlinkGoodputMbps {
		t.Errorf("Carpool %.2f Mbps not >= 2x legacy %.2f Mbps",
			carpool.DownlinkGoodputMbps, legacy.DownlinkGoodputMbps)
	}
	if carpool.MeanDelay > legacy.MeanDelay {
		t.Errorf("Carpool delay %v worse than legacy %v", carpool.MeanDelay, legacy.MeanDelay)
	}
}

func TestCarpoolBeatsAMPDUAcrossSTAs(t *testing.T) {
	ampdu, err := Run(cbrScenario(t, AMPDU, 25, 13))
	if err != nil {
		t.Fatal(err)
	}
	carpool, err := Run(cbrScenario(t, Carpool, 25, 13))
	if err != nil {
		t.Fatal(err)
	}
	if carpool.DownlinkGoodputMbps <= ampdu.DownlinkGoodputMbps {
		t.Errorf("Carpool %.2f Mbps not above A-MPDU %.2f Mbps",
			carpool.DownlinkGoodputMbps, ampdu.DownlinkGoodputMbps)
	}
}

func TestRTEMattersForLongAggregates(t *testing.T) {
	// With a BER-biased oracle, Carpool (RTE) sustains aggregation while
	// MU-Aggregation loses its long-frame tails.
	mkCfg := func(proto Protocol) Config {
		cfg := cbrScenario(t, proto, 20, 17)
		cfg.Oracle = NewBiasedOracle(0.01, 17)
		return cfg
	}
	mu, err := Run(mkCfg(MUAggregation))
	if err != nil {
		t.Fatal(err)
	}
	carpool, err := Run(mkCfg(Carpool))
	if err != nil {
		t.Fatal(err)
	}
	if carpool.DownlinkGoodputMbps <= mu.DownlinkGoodputMbps {
		t.Errorf("Carpool %.2f Mbps not above MU-Aggregation %.2f under BER bias",
			carpool.DownlinkGoodputMbps, mu.DownlinkGoodputMbps)
	}
}

func TestWiFoxPrioritizesDownlink(t *testing.T) {
	legacy, err := Run(cbrScenario(t, Legacy80211, 20, 19))
	if err != nil {
		t.Fatal(err)
	}
	wifox, err := Run(cbrScenario(t, WiFox, 20, 19))
	if err != nil {
		t.Fatal(err)
	}
	if wifox.DownlinkGoodputMbps <= legacy.DownlinkGoodputMbps {
		t.Errorf("WiFox %.2f Mbps not above legacy %.2f Mbps",
			wifox.DownlinkGoodputMbps, legacy.DownlinkGoodputMbps)
	}
}

func TestMaxLatencyExpiresFrames(t *testing.T) {
	cfg := cbrScenario(t, Legacy80211, 25, 23)
	cfg.MaxLatency = 50 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Expired == 0 {
		t.Error("saturated queue with 50 ms deadline expired nothing")
	}
	if res.MeanDelay > 60*time.Millisecond {
		t.Errorf("mean delay %v exceeds the deadline", res.MeanDelay)
	}
}

func TestLossyOracleCausesRetries(t *testing.T) {
	// At 25 saturated STAs the channel is the bottleneck, so a 30%
	// subframe loss must cost goodput, not just retries.
	cfg := cbrScenario(t, Legacy80211, 25, 29)
	oracle, err := NewFixedOracle(0.7, 29)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Oracle = oracle
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Error("30% loss caused no retries")
	}
	clean, err := Run(cbrScenario(t, Legacy80211, 25, 29))
	if err != nil {
		t.Fatal(err)
	}
	if res.DownlinkGoodputMbps >= clean.DownlinkGoodputMbps {
		t.Error("loss did not reduce goodput")
	}
}

func TestCollisionsGrowWithContention(t *testing.T) {
	few, err := Run(cbrScenario(t, Legacy80211, 3, 31))
	if err != nil {
		t.Fatal(err)
	}
	many, err := Run(cbrScenario(t, Legacy80211, 28, 31))
	if err != nil {
		t.Fatal(err)
	}
	if many.Collisions <= few.Collisions {
		t.Errorf("collisions %d (28 STAs) <= %d (3 STAs)", many.Collisions, few.Collisions)
	}
}

func TestEmptySimulationTerminates(t *testing.T) {
	res, err := Run(Config{Protocol: Carpool, NumSTAs: 3, Duration: time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 || res.BusyTime != 0 {
		t.Error("idle network produced activity")
	}
}

func TestAMPDUAggregatesPerSTA(t *testing.T) {
	// One STA receiving bursts of frames: A-MPDU should drain each burst
	// in far fewer channel acquisitions than legacy.
	mk := func(proto Protocol) Config {
		var burst []traffic.Arrival
		for t := time.Duration(0); t < time.Second; t += 20 * time.Millisecond {
			for i := 0; i < 20; i++ {
				burst = append(burst, traffic.Arrival{Time: t, Size: 1000})
			}
		}
		return Config{
			Protocol: proto, NumSTAs: 1, Duration: 2 * time.Second, Seed: 37,
			Downlink: [][]traffic.Arrival{burst},
		}
	}
	legacy, err := Run(mk(Legacy80211))
	if err != nil {
		t.Fatal(err)
	}
	ampdu, err := Run(mk(AMPDU))
	if err != nil {
		t.Fatal(err)
	}
	if ampdu.Delivered < legacy.Delivered {
		t.Error("A-MPDU delivered less than legacy")
	}
	if ampdu.APTransmissions >= legacy.APTransmissions {
		t.Errorf("A-MPDU used %d acquisitions vs legacy %d",
			ampdu.APTransmissions, legacy.APTransmissions)
	}
}
