package conform

import "fmt"

// Injectable bugs. The harness can deliberately corrupt one side of a
// differential pair to prove, end to end, that a real fast-path defect is
// caught by the matrix and shrinks to a small replayable scenario. The
// corruption lives entirely inside this package — production decode paths
// carry no hook.
const (
	// BugLLRSign flips the sign of every quantized LLR handed to the
	// int8 fast paths (demap-quant and viterbi-soft pairs), the classic
	// "inverted soft-bit convention" defect.
	BugLLRSign = "llrsign"
)

// injectedBug is the currently armed bug ("" = none). The runner is
// single-threaded, so a plain variable suffices.
var injectedBug string

// InjectBug arms a deliberate fast-path corruption for subsequent checks;
// an empty name disarms. Unknown names error.
func InjectBug(name string) error {
	switch name {
	case "", BugLLRSign:
		injectedBug = name
		return nil
	default:
		return fmt.Errorf("conform: unknown injectable bug %q (have %q)", name, BugLLRSign)
	}
}

// InjectedBug reports the armed bug name.
func InjectedBug() string { return injectedBug }

// corruptLLRQs applies the armed bug to a fast-path int8 LLR buffer.
func corruptLLRQs(llrs []int8) {
	if injectedBug != BugLLRSign {
		return
	}
	for i, l := range llrs {
		if l > -128 {
			llrs[i] = -l
		}
	}
}
