package conform

import "fmt"

// Injectable bugs. The harness can deliberately corrupt one side of a
// differential pair to prove, end to end, that a real fast-path defect is
// caught by the matrix and shrinks to a small replayable scenario. The
// corruption lives entirely inside this package — production decode paths
// carry no hook.
const (
	// BugLLRSign flips the sign of every quantized LLR handed to the
	// int8 fast paths (demap-quant and viterbi-soft pairs), the classic
	// "inverted soft-bit convention" defect.
	BugLLRSign = "llrsign"
	// BugGFMul corrupts the erasure layer's parity shards the way a
	// GF(256) multiply built on the wrong reduction polynomial would:
	// every parity byte whose product overflowed x^8 (top bit set)
	// carries the wrong residue. The fec-vs-retry pair must observe the
	// corruption as failed recoveries — wrong bytes never count as
	// delivered — and shrink it to a seed-only token.
	BugGFMul = "gfmul"
)

// injectedBug is the currently armed bug ("" = none). The runner is
// single-threaded, so a plain variable suffices.
var injectedBug string

// InjectBug arms a deliberate fast-path corruption for subsequent checks;
// an empty name disarms. Unknown names error.
func InjectBug(name string) error {
	switch name {
	case "", BugLLRSign, BugGFMul:
		injectedBug = name
		return nil
	default:
		return fmt.Errorf("conform: unknown injectable bug %q (have %q, %q)", name, BugLLRSign, BugGFMul)
	}
}

// InjectedBug reports the armed bug name.
func InjectedBug() string { return injectedBug }

// corruptLLRQs applies the armed bug to a fast-path int8 LLR buffer.
func corruptLLRQs(llrs []int8) {
	if injectedBug != BugLLRSign {
		return
	}
	for i, l := range llrs {
		if l > -128 {
			llrs[i] = -l
		}
	}
}

// corruptParity applies the armed gfmul bug to encoded parity shards: a
// multiply table reduced by the wrong polynomial differs from the real
// one exactly in products that wrapped past x^8, so the emulation flips
// the 0x11d-vs-0x100 residue (0x1d) on every parity byte with the top
// bit set. No-op unless BugGFMul is armed.
func corruptParity(parity [][]byte) {
	if injectedBug != BugGFMul {
		return
	}
	for _, p := range parity {
		for i, b := range p {
			if b&0x80 != 0 {
				p[i] = b ^ 0x1d
			}
		}
	}
}
