// Package conform is the differential conformance harness: it runs every
// fast-path/oracle pair in the codebase through matrices of injected
// faults (internal/faults) and asserts bit-identity or a documented
// divergence bound per pair.
//
// The differential pairs — Pairs() is the authoritative registry; the
// count below tracks it:
//
//   - demap-quant:    modem.DemapSoft (float64 weighted LLRs) vs
//     modem.DemapSoftQWeightedInto (saturating int8) — bound: ≤ 1 int8
//     count per LLR (rounding-order slack of the quantizer).
//   - viterbi-soft:   fec.ViterbiDecodeSoft (float64 oracle) vs
//     fec.SoftDecoder.DecodeInto (SWAR int8 fast path) — bit-identical on
//     inputs representable in int8.
//   - receive-seq-par: sequential (GOMAXPROCS=1) vs parallel
//     core.ReceiveFrame, and a sequential loop vs core.ReceiveFrameAll —
//     bit-identical, including errors.
//   - mac-sim:        mac.Run re-run with an identical config, and run
//     again with an obs sink attached — bit-identical Results
//     (scratch-reuse and observation must not leak into outcomes).
//   - scratch-fresh:  every *Into/pooled-workspace path vs its
//     fresh-allocation twin — bit-identical.
//   - engine-vs-macsim: the real-time engine's deterministic mode vs
//     mac.Run under a shared location-pure loss oracle — identical
//     delivered bytes per STA and Jain byte-fairness.
//   - batched-vs-unbatched: the slab-batched wire+admission serving path
//     vs the per-frame path — bit-identical Stats.
//   - sharded-vs-unsharded: multi-lane sharded admission vs the
//     single-lane engine — shards=1 bit-identical; multi-shard identical
//     per-STA bytes and fairness.
//   - fec-vs-retry: the erasure-coded engine (StrategyFEC, XOR and
//     RS/GF(256) parity) vs the shared-fate retry engine — identical
//     per-STA delivered bytes and fairness, with parity recovery
//     byte-true.
//   - cluster-vs-single: the multi-AP cluster's deterministic runner vs
//     the bare engine — one AP bit-identical Stats; three APs (and three
//     APs with mid-run roaming handoffs) identical per-STA delivered
//     bytes and fairness.
//
// On divergence the harness shrinks the scenario (impairment removal,
// then per-impairment mildening) to a minimal failing case and prints a
// replayable "pair + scenario string" token; cmd/conform -replay runs it.
package conform

import (
	"fmt"
	"math/rand"
	"sync"

	"carpool/internal/bloom"
	"carpool/internal/core"
	"carpool/internal/faults"
	"carpool/internal/obs"
	"carpool/internal/phy"
)

// Pair is one fast-path-vs-oracle differential check.
type Pair struct {
	// Name identifies the pair in replay tokens and -pairs filters.
	Name string
	// Desc is a one-line description for listings.
	Desc string
	// Bound documents the accepted divergence ("bit-identical" or the
	// quantitative bound).
	Bound string
	// run executes both implementations under the scenario. It returns a
	// non-empty human-readable detail when they diverge beyond Bound, and
	// a hard error only when the harness itself cannot run (which is also
	// treated as a failure by the runner).
	run func(sc faults.Scenario) (detail string, err error)
}

// Check runs the pair under one scenario, reporting divergence detail
// ("" = conforms) and harness errors.
func (p Pair) Check(sc faults.Scenario) (string, error) { return p.run(sc) }

// Failure is one divergence found by Run, with its shrunk reproduction.
type Failure struct {
	Pair     string
	Scenario faults.Scenario
	Detail   string
	// Shrunk is the minimized failing scenario (equal to Scenario when
	// shrinking was disabled or could not reduce it) and ShrunkDetail the
	// divergence it produces.
	Shrunk       faults.Scenario
	ShrunkDetail string
}

// Replay renders the token that reproduces the shrunk failure:
// "<pair>|<scenario>". cmd/conform -replay accepts it verbatim.
func (f Failure) Replay() string { return f.Pair + "|" + f.Shrunk.String() }

// Options configures a matrix run.
type Options struct {
	// Shrink minimizes every failing scenario before reporting.
	Shrink bool
	// MaxShrinkChecks bounds the number of pair evaluations one shrink
	// may spend (<= 0 selects 200).
	MaxShrinkChecks int
	// Logf, when non-nil, receives one line per check.
	Logf func(format string, args ...any)
}

// Run drives every pair through every scenario and returns the failures.
// Checks and divergences are counted under conform.* obs scopes.
func Run(pairs []Pair, matrix []faults.Scenario, opt Options) []Failure {
	sink := obs.Active()
	var failures []Failure
	for _, p := range pairs {
		for _, sc := range matrix {
			sink.Counter("conform.checks").Inc()
			detail, err := p.Check(sc)
			if err != nil {
				detail = "harness error: " + err.Error()
			}
			if opt.Logf != nil {
				verdict := "ok"
				if detail != "" {
					verdict = "DIVERGED: " + detail
				}
				opt.Logf("%-16s %-60s %s", p.Name, sc.String(), verdict)
			}
			if detail == "" {
				continue
			}
			sink.Counter("conform.divergences").Inc()
			f := Failure{Pair: p.Name, Scenario: sc, Detail: detail, Shrunk: sc, ShrunkDetail: detail}
			if opt.Shrink {
				f.Shrunk, f.ShrunkDetail = Shrink(p, sc, opt.MaxShrinkChecks)
				if opt.Logf != nil {
					opt.Logf("%-16s shrunk to %q (%d impairments)", p.Name, f.Replay(), len(f.Shrunk.Impairments))
				}
			}
			failures = append(failures, f)
		}
	}
	return failures
}

// PairByName finds a pair in Pairs(); ok is false for unknown names.
func PairByName(name string) (Pair, bool) {
	for _, p := range Pairs() {
		if p.Name == name {
			return p, true
		}
	}
	return Pair{}, false
}

// fixtureMAC returns the conformance fixture's station b address.
func fixtureMAC(b byte) bloom.MAC { return bloom.MAC{0x02, 0xca, 0x90, 0, 0, b} }

// fixtureFrame builds the deterministic multi-MCS Carpool frame every
// sample-domain pair decodes: four subframes across four MCSs, three of
// them owned by station 1 so one reception decodes several payloads.
// Frames are memoized per seed — scenarios impair copies, never the
// original.
func fixtureFrame(seed int64) (*core.Frame, error) {
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if f, ok := fixtureCache[seed]; ok {
		return f, nil
	}
	rng := rand.New(rand.NewSource(seed))
	payload := func(n int) []byte {
		p := make([]byte, n)
		rng.Read(p)
		return p
	}
	subs := []core.Subframe{
		{Receiver: fixtureMAC(1), MCS: phy.MCS24, Payload: payload(300)},
		{Receiver: fixtureMAC(2), MCS: phy.MCS48, Payload: payload(150)},
		{Receiver: fixtureMAC(1), MCS: phy.MCS12, Payload: payload(400)},
		{Receiver: fixtureMAC(1), MCS: phy.MCS36, Payload: payload(120)},
	}
	frame, err := core.BuildFrame(subs, core.FrameConfig{})
	if err != nil {
		return nil, fmt.Errorf("conform: building fixture frame: %w", err)
	}
	if fixtureCache == nil {
		fixtureCache = map[int64]*core.Frame{}
	}
	fixtureCache[seed] = frame
	return frame, nil
}

var (
	fixtureMu    sync.Mutex
	fixtureCache map[int64]*core.Frame
)

// dump renders any value in a NaN-tolerant canonical form for equality
// comparison: fmt's %#v prints NaN as a literal, so two structurally
// identical results compare equal even where reflect.DeepEqual's float
// semantics would not.
func dump(v any) string { return fmt.Sprintf("%#v", v) }
