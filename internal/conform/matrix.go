package conform

import (
	"fmt"

	"carpool/internal/faults"
	"carpool/internal/ofdm"
)

// fixtureCutSample is a sample index inside the DATA field of the
// fixture's third subframe (symbols 38..105 of a 114-symbol frame) — the
// canonical mid-subframe truncation point for the short matrix.
const fixtureCutSample = ofdm.PreambleLen + 70*ofdm.SymbolLen + ofdm.SymbolLen/2

// ShortMatrix is the PR-gating scenario set: one clean baseline plus at
// least one instance of every impairment kind, individually mild enough
// that every pair's bound holds on a healthy build, and a few stacked
// combinations. Seeds vary so the fixture payloads do too.
func ShortMatrix() []faults.Scenario {
	return []faults.Scenario{
		{Seed: 1},
		{Seed: 2, Impairments: []faults.Impairment{faults.AWGN{SNRdB: 24}}},
		{Seed: 3, Impairments: []faults.Impairment{faults.CFO{EpsRad: 0.004, Phase0: 0.3}}},
		{Seed: 4, Impairments: []faults.Impairment{faults.Clip{Level: 1.8}}},
		{Seed: 5, Impairments: []faults.Impairment{faults.Burst{Start: 2000, Len: 160, GainDB: -3}}},
		{Seed: 6, Impairments: []faults.Impairment{faults.SymbolNoise{Sym: 0, Count: 2, Amp: 0.12}}}, // A-HDR
		{Seed: 7, Impairments: []faults.Impairment{faults.SymbolNoise{Sym: 2, Count: 1, Amp: 0.15}}}, // first SIG
		{Seed: 8, Impairments: []faults.Impairment{faults.PhaseJitter{SigmaRad: 0.03}}},
		{Seed: 9, Impairments: []faults.Impairment{faults.Dropout{Start: 4200, Len: 40}}},
		{Seed: 10, Impairments: []faults.Impairment{faults.Truncate{At: fixtureCutSample}}},
		{Seed: 11, Impairments: []faults.Impairment{
			faults.AWGN{SNRdB: 22},
			faults.CFO{EpsRad: 0.003, Phase0: 0},
			faults.PhaseJitter{SigmaRad: 0.02},
		}},
		{Seed: 12, Impairments: []faults.Impairment{
			faults.Clip{Level: 2.2},
			faults.Burst{Start: 5000, Len: 200, GainDB: -6},
			faults.Truncate{At: fixtureCutSample + 3*ofdm.SymbolLen},
		}},
	}
}

// FullMatrix is the nightly sweep: the short matrix plus a programmatic
// grid over seeds, impairment severities, and pairwise compositions.
func FullMatrix() []faults.Scenario {
	out := ShortMatrix()
	seed := int64(100)
	next := func(imps ...faults.Impairment) {
		out = append(out, faults.Scenario{Seed: seed, Impairments: imps})
		seed++
	}
	for _, snr := range []float64{30, 25, 20, 16} {
		next(faults.AWGN{SNRdB: snr})
	}
	for _, eps := range []float64{0.001, 0.003, 0.006, 0.01} {
		next(faults.CFO{EpsRad: eps, Phase0: 0.5})
	}
	for _, lvl := range []float64{2.5, 2.0, 1.6, 1.3} {
		next(faults.Clip{Level: lvl})
	}
	for _, gain := range []float64{-9, -6, -3, 0} {
		next(faults.Burst{Start: 1500, Len: 240, GainDB: gain})
	}
	for sym := 0; sym < 8; sym += 2 {
		next(faults.SymbolNoise{Sym: sym, Count: 2, Amp: 0.1})
	}
	for _, sig := range []float64{0.01, 0.02, 0.04, 0.08} {
		next(faults.PhaseJitter{SigmaRad: sig})
	}
	for _, start := range []int{800, 3000, 6000, 8600} {
		next(faults.Dropout{Start: start, Len: 60})
	}
	for _, at := range []int{
		ofdm.PreambleLen + 40*ofdm.SymbolLen + 11,
		fixtureCutSample,
		ofdm.PreambleLen + 100*ofdm.SymbolLen + 50,
	} {
		next(faults.Truncate{At: at})
	}
	// Pairwise compositions of one representative per kind.
	reps := []faults.Impairment{
		faults.AWGN{SNRdB: 24},
		faults.CFO{EpsRad: 0.004, Phase0: 0.2},
		faults.Clip{Level: 2.0},
		faults.Burst{Start: 2500, Len: 160, GainDB: -6},
		faults.SymbolNoise{Sym: 2, Count: 1, Amp: 0.1},
		faults.PhaseJitter{SigmaRad: 0.02},
		faults.Dropout{Start: 5200, Len: 40},
	}
	for i := 0; i < len(reps); i++ {
		for j := i + 1; j < len(reps); j++ {
			next(reps[i], reps[j])
		}
	}
	return out
}

// MatrixByName resolves "short" or "full".
func MatrixByName(name string) ([]faults.Scenario, error) {
	switch name {
	case "short":
		return ShortMatrix(), nil
	case "full":
		return FullMatrix(), nil
	default:
		return nil, fmt.Errorf(`conform: unknown matrix %q (want "short" or "full")`, name)
	}
}
