package conform

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"carpool/internal/core"
	"carpool/internal/faults"
	"carpool/internal/phy"
)

var update = flag.Bool("update", false, "rewrite testdata/golden traces instead of comparing")

// goldenTrace freezes one MCS's end-to-end receive chain: the exact
// transmitted samples, the impaired reception outcome, and digests of
// every decoded artifact. Any change — intended or not — shows up as a
// digest mismatch; intended changes re-freeze with -update.
type goldenTrace struct {
	MCS            string `json:"mcs"`
	NumSymbols     int    `json:"num_symbols"`
	TxSamples      string `json:"tx_samples_sha256"`
	Scenario       string `json:"scenario"`
	Status         string `json:"status"`
	CFOBits        string `json:"cfo_float64_bits"`
	Matched        []int  `json:"matched"`
	SymbolsHeard   int    `json:"symbols_heard"`
	SymbolsDecoded int    `json:"symbols_decoded"`
	Payload        string `json:"payload_sha256"`
	Blocks         string `json:"blocks_sha256"`
	SideBits       string `json:"side_bits_sha256"`
	SymbolOK       string `json:"symbol_ok_sha256"`
}

// goldenScenario is the fixed impairment every golden trace passes
// through: mild but nonzero, so CFO estimation, RTE tracking, and the
// side channel all do real work.
func goldenScenario() faults.Scenario {
	return faults.Scenario{Seed: 424242, Impairments: []faults.Impairment{
		faults.AWGN{SNRdB: 28},
		faults.CFO{EpsRad: 0.002, Phase0: 0.4},
	}}
}

func hashSamples(samples []complex128) string {
	h := sha256.New()
	var b [16]byte
	for _, s := range samples {
		binary.BigEndian.PutUint64(b[:8], math.Float64bits(real(s)))
		binary.BigEndian.PutUint64(b[8:], math.Float64bits(imag(s)))
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func hashByteBlocks(blocks [][]byte) string {
	h := sha256.New()
	var n [8]byte
	for _, blk := range blocks {
		binary.BigEndian.PutUint64(n[:], uint64(len(blk)))
		h.Write(n[:])
		h.Write(blk)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func hashBools(bs []bool) string {
	h := sha256.New()
	for _, b := range bs {
		if b {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// captureTrace runs one MCS through build -> impair -> receive and
// digests the result.
func captureTrace(t *testing.T, mcs phy.MCS) goldenTrace {
	t.Helper()
	frame, err := fixtureMCSFrame(mcs)
	if err != nil {
		t.Fatalf("%v: building golden frame: %v", mcs, err)
	}
	sc := goldenScenario()
	imp := sc.Apply(frame.Samples)
	res, err := core.ReceiveFrame(imp, core.ReceiverConfig{
		MAC: fixtureMAC(1), UseRTE: true, SoftFEC: true, KnownStart: 0,
	})
	if err != nil {
		t.Fatalf("%v: golden receive errored: %v", mcs, err)
	}
	tr := goldenTrace{
		MCS:            mcs.String(),
		NumSymbols:     frame.NumSymbols(),
		TxSamples:      hashSamples(frame.Samples),
		Scenario:       sc.String(),
		Status:         fmt.Sprint(res.Status),
		CFOBits:        fmt.Sprintf("%016x", math.Float64bits(res.CFORad)),
		Matched:        res.Matched,
		SymbolsHeard:   res.SymbolsHeard,
		SymbolsDecoded: res.SymbolsDecoded,
	}
	var payloads, blocks, sides [][]byte
	var oks []bool
	for _, sub := range res.Subframes {
		payloads = append(payloads, sub.Payload)
		blocks = append(blocks, sub.Blocks...)
		sides = append(sides, sub.SideBits...)
		oks = append(oks, sub.SymbolOK...)
	}
	tr.Payload = hashByteBlocks(payloads)
	tr.Blocks = hashByteBlocks(blocks)
	tr.SideBits = hashByteBlocks(sides)
	tr.SymbolOK = hashBools(oks)
	return tr
}

// fixtureMCSFrame builds the single-subframe golden frame for one MCS
// with a deterministic payload derived from the rate.
func fixtureMCSFrame(mcs phy.MCS) (*core.Frame, error) {
	seed := int64(1000 + int(mcs.DataRateMbps()))
	payload := make([]byte, 257)
	s := uint64(seed)
	for i := range payload {
		s = s*6364136223846793005 + 1442695040888963407
		payload[i] = byte(s >> 56)
	}
	return core.BuildFrame([]core.Subframe{
		{Receiver: fixtureMAC(1), MCS: mcs, Payload: payload},
	}, core.FrameConfig{})
}

func goldenPath(mcs phy.MCS) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("mcs%d.json", int(mcs.DataRateMbps())))
}

// TestGoldenTraces locks the receive chain's observable behaviour per
// MCS. On intended changes run:
//
//	go test ./internal/conform -run TestGoldenTraces -update
func TestGoldenTraces(t *testing.T) {
	for _, mcs := range phy.AllMCS() {
		mcs := mcs
		t.Run(fmt.Sprintf("mcs%d", int(mcs.DataRateMbps())), func(t *testing.T) {
			got := captureTrace(t, mcs)
			path := goldenPath(mcs)
			if *update {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden trace (run with -update to freeze): %v", err)
			}
			var want goldenTrace
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt golden trace %s: %v", path, err)
			}
			if gd, wd := dump(got), dump(want); gd != wd {
				t.Errorf("receive chain drifted from golden trace %s:\n got %s\nwant %s", path, gd, wd)
			}
		})
	}
}
