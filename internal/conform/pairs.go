package conform

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"time"

	"carpool/internal/cluster"
	"carpool/internal/core"
	"carpool/internal/engine"
	"carpool/internal/faults"
	"carpool/internal/fec"
	"carpool/internal/mac"
	"carpool/internal/modem"
	"carpool/internal/obs"
	"carpool/internal/ofdm"
	"carpool/internal/phy"
	"carpool/internal/traffic"
)

// Pairs returns every differential pair, in stable order.
func Pairs() []Pair {
	return []Pair{
		{
			Name:  "demap-quant",
			Desc:  "float64 weighted soft demap vs saturating int8 demap",
			Bound: "per-LLR divergence <= 1 int8 count",
			run:   runDemapQuant,
		},
		{
			Name:  "viterbi-soft",
			Desc:  "float64 soft Viterbi oracle vs SWAR int8 SoftDecoder",
			Bound: "bit-identical decoded info bits",
			run:   runViterbiSoft,
		},
		{
			Name:  "receive-seq-par",
			Desc:  "sequential vs parallel ReceiveFrame / ReceiveFrameAll",
			Bound: "bit-identical results and errors",
			run:   runReceiveSeqPar,
		},
		{
			Name:  "mac-sim",
			Desc:  "MAC simulator re-run and obs-attached run vs first run",
			Bound: "bit-identical Result",
			run:   runMACSim,
		},
		{
			Name:  "scratch-fresh",
			Desc:  "pooled/reused decode workspaces vs fresh allocations",
			Bound: "bit-identical outputs",
			run:   runScratchFresh,
		},
		{
			Name:  "engine-vs-macsim",
			Desc:  "deterministic real-time engine vs discrete-event MAC simulator",
			Bound: "identical delivered bytes per STA and Jain byte-fairness",
			run:   runEngineVsMACSim,
		},
		{
			Name:  "batched-vs-unbatched",
			Desc:  "slab-batched wire+admission serving path vs per-frame path",
			Bound: "bit-identical engine Stats",
			run:   runBatchedVsUnbatched,
		},
		{
			Name:  "sharded-vs-unsharded",
			Desc:  "multi-lane sharded admission vs single-lane engine",
			Bound: "shards=1 bit-identical Stats; multi-shard identical per-STA bytes and Jain",
			run:   runShardedVsUnsharded,
		},
		{
			Name:  "fec-vs-retry",
			Desc:  "erasure-coded engine (StrategyFEC) vs shared-fate retry engine",
			Bound: "identical per-STA delivered bytes and Jain; byte-true parity recovery",
			run:   runFECVsRetry,
		},
		{
			Name:  "cluster-vs-single",
			Desc:  "multi-AP cluster runner vs the bare deterministic engine",
			Bound: "1 AP bit-identical Stats; multi-AP and roaming identical per-STA bytes and Jain",
			run:   runClusterVsSingle,
		},
	}
}

// syncFixture impairs the fixture frame with sc and runs the shared
// front-end. A non-OK status conforms trivially for sample-domain pairs:
// both sides of every pair sit behind the same Sync.
func syncFixture(sc faults.Scenario) (frame *core.Frame, buf, h []complex128, ok bool, err error) {
	frame, err = fixtureFrame(sc.Seed)
	if err != nil {
		return nil, nil, nil, false, err
	}
	imp := sc.Apply(frame.Samples)
	buf, h, _, status := phy.Sync(imp, 0)
	return frame, buf, h, status == phy.StatusOK, nil
}

// segmentsFor demodulates one subframe's DATA symbols from the impaired
// buffer with ground-truth geometry (no SIG decode in the loop), once per
// requested LLR flavor, with identical fresh trackers.
func segmentsFor(buf, h []complex128, sub core.SubframeTx, wantFloat, wantQuant bool) (segF, segQ *phy.Segment, err error) {
	dataOff := ofdm.PreambleLen + (sub.StartSymbol+1)*ofdm.SymbolLen
	nsym := len(sub.Blocks)
	if wantFloat {
		tr := phy.NewStandardTracker()
		tr.Init(h, sub.MCS.Mod)
		segF, err = phy.DecodeDataSymbolsOpts(buf, dataOff, sub.StartSymbol+1, nsym,
			sub.MCS.Mod, tr, nil, 0, true)
		if err != nil {
			return nil, nil, err
		}
	}
	if wantQuant {
		tr := phy.NewStandardTracker()
		tr.Init(h, sub.MCS.Mod)
		segQ, err = phy.DecodeDataSymbolsQ(buf, dataOff, sub.StartSymbol+1, nsym,
			sub.MCS.Mod, tr, nil, 0)
		if err != nil {
			return nil, nil, err
		}
	}
	return segF, segQ, nil
}

// runDemapQuant checks, bit position by bit position, that the quantized
// demapper agrees with quantizing the float chain's weighted LLRs — the
// divergence bound is one int8 count, the rounding-order slack between
// (d*w)*scale and d*(scale*w).
func runDemapQuant(sc faults.Scenario) (string, error) {
	frame, buf, h, ok, err := syncFixture(sc)
	if err != nil || !ok {
		return "", err
	}
	for _, sub := range frame.Subframes {
		segF, segQ, err := segmentsFor(buf, h, sub, true, true)
		if err != nil {
			return "", err
		}
		k := sub.MCS.Mod.Kmod()
		scale := modem.LLRQScale / (4 * k * k)
		if len(segF.LLRs) != len(segQ.LLRQs) {
			return fmt.Sprintf("subframe %d: float chain demodulated %d symbols, quantized %d",
				sub.StartSymbol, len(segF.LLRs), len(segQ.LLRQs)), nil
		}
		for s := range segQ.LLRQs {
			q := append([]int8(nil), segQ.LLRQs[s]...)
			corruptLLRQs(q)
			for b := range q {
				want := fec.SatLLR8(segF.LLRs[s][b] * scale)
				diff := int(q[b]) - int(want)
				if diff < -1 || diff > 1 {
					return fmt.Sprintf("subframe at symbol %d, data symbol %d bit %d: quantized LLR %d vs float-derived %d (float %.4g)",
						sub.StartSymbol, s, b, q[b], want, segF.LLRs[s][b]), nil
				}
			}
		}
	}
	return "", nil
}

// runViterbiSoft feeds identical LLR information — the quantized stream,
// and its exact float64 image — to the SWAR int8 decoder and the float64
// oracle. The decoders document bit-identical survivor paths on identical
// decisions, so any payload mismatch is a fast-path defect.
func runViterbiSoft(sc faults.Scenario) (string, error) {
	frame, buf, h, ok, err := syncFixture(sc)
	if err != nil || !ok {
		return "", err
	}
	var dec fec.SoftDecoder
	for _, sub := range frame.Subframes {
		_, segQ, err := segmentsFor(buf, h, sub, false, true)
		if err != nil {
			return "", err
		}
		nsym := len(segQ.LLRQs)
		if nsym == 0 {
			continue
		}
		ncbps := sub.MCS.CodedBitsPerSymbol()
		il, err := fec.CachedInterleaver(ncbps, sub.MCS.Mod.BitsPerSymbol())
		if err != nil {
			return "", err
		}
		llrq := make([]int8, nsym*ncbps)
		for s := 0; s < nsym; s++ {
			if err := il.DeinterleaveLLRInto(llrq[s*ncbps:(s+1)*ncbps], segQ.LLRQs[s]); err != nil {
				return "", err
			}
		}
		floats := make([]float64, len(llrq))
		for i, l := range llrq {
			floats[i] = float64(l)
		}
		corruptLLRQs(llrq) // injected-bug hook: fast-path input only

		numInfo := nsym * sub.MCS.DataBitsPerSymbol()
		oracle, err := fec.ViterbiDecodeSoft(floats, sub.MCS.Rate, numInfo)
		if err != nil {
			return "", err
		}
		fast := make([]byte, numInfo)
		if err := dec.DecodeInto(fast, llrq, sub.MCS.Rate, numInfo); err != nil {
			return "", err
		}
		if !bytes.Equal(oracle, fast) {
			first, n := -1, 0
			for i := range oracle {
				if oracle[i] != fast[i] {
					n++
					if first < 0 {
						first = i
					}
				}
			}
			return fmt.Sprintf("subframe at symbol %d (%v): %d/%d info bits differ, first at %d",
				sub.StartSymbol, sub.MCS, n, numInfo, first), nil
		}
	}
	return "", nil
}

// runReceiveSeqPar compares the full receive pipeline between an inline
// phase-2 (GOMAXPROCS=1) and the parallel fan-out, per station, and the
// sequential station loop against ReceiveFrameAll — results and errors.
func runReceiveSeqPar(sc faults.Scenario) (string, error) {
	frame, err := fixtureFrame(sc.Seed)
	if err != nil {
		return "", err
	}
	imp := sc.Apply(frame.Samples)
	cfgs := []core.ReceiverConfig{
		{MAC: fixtureMAC(1), UseRTE: true, KnownStart: 0, SoftFEC: true},
		{MAC: fixtureMAC(2), KnownStart: 0},
		{MAC: fixtureMAC(9), UseRTE: true, KnownStart: 0}, // not addressed: drop path
	}
	rxs := make([][]complex128, len(cfgs))
	for i := range rxs {
		rxs[i] = imp
	}

	prev := runtime.GOMAXPROCS(1)
	seqRes := make([]*core.FrameRx, len(cfgs))
	seqErr := make([]error, len(cfgs))
	for i, cfg := range cfgs {
		seqRes[i], seqErr[i] = core.ReceiveFrame(imp, cfg)
	}
	runtime.GOMAXPROCS(4)
	parDiff := ""
	for i, cfg := range cfgs {
		res, err := core.ReceiveFrame(imp, cfg)
		if dump(res) != dump(seqRes[i]) || fmt.Sprint(err) != fmt.Sprint(seqErr[i]) {
			parDiff = fmt.Sprintf("station %d: parallel ReceiveFrame diverged from sequential (err %v vs %v)",
				i, err, seqErr[i])
			break
		}
	}
	allRes, allErr := core.ReceiveFrameAll(rxs, cfgs)
	runtime.GOMAXPROCS(prev)
	if parDiff != "" {
		return parDiff, nil
	}

	// ReceiveFrameAll reports the lowest-station error and nils the
	// results from that station on; mirror that on the sequential side.
	wantRes := append([]*core.FrameRx(nil), seqRes...)
	var wantErr error
	for i, err := range seqErr {
		if err != nil {
			for j := i; j < len(wantRes); j++ {
				wantRes[j] = nil
			}
			wantErr = fmt.Errorf("core: station %d: %w", i, err)
			break
		}
	}
	if fmt.Sprint(allErr) != fmt.Sprint(wantErr) {
		return fmt.Sprintf("ReceiveFrameAll error %v, sequential loop implies %v", allErr, wantErr), nil
	}
	if len(allRes) != len(wantRes) {
		return fmt.Sprintf("ReceiveFrameAll returned %d results, want %d", len(allRes), len(wantRes)), nil
	}
	for i := range allRes {
		// dump dereferences only top-level pointers, so compare per station.
		if dump(allRes[i]) != dump(wantRes[i]) {
			return fmt.Sprintf("ReceiveFrameAll station %d diverged from sequential loop", i), nil
		}
	}
	return "", nil
}

// macConfig derives a deterministic simulator configuration from the
// scenario: sample-domain impairments cannot apply inside the
// discrete-event MAC, so the scenario's identity is folded into the
// delivery oracle's severity and the ablation toggles instead. Every call
// rebuilds traffic and oracle from scratch — both hold RNG state.
func macConfig(sc faults.Scenario) mac.Config {
	hsh := fnv.New64a()
	hsh.Write([]byte(sc.String()))
	h := hsh.Sum64()
	const dur = 120 * time.Millisecond
	rng := rand.New(rand.NewSource(sc.Seed))
	down := make([][]traffic.Arrival, 6)
	for i := range down {
		down[i] = traffic.CBRFlow(rng, 300+40*i, time.Duration(3+i)*time.Millisecond, dur)
	}
	cfg := mac.Config{
		Protocol: mac.Carpool, NumSTAs: 6, Duration: dur, Seed: sc.Seed,
		Downlink: down, SaturatedUplink: true,
		SimultaneousACK: h&1 != 0,
		UseRTSCTS:       h&2 != 0,
	}
	if h&4 != 0 {
		cfg.MaxLatency = 40 * time.Millisecond
	}
	cfg.Oracle = mac.NewBiasedOracle(0.002+float64(h%7)*0.0015, sc.Seed)
	return cfg
}

// runMACSim checks the simulator's differential contract: a re-run with an
// identically rebuilt config, and a run with an obs sink attached, must
// both reproduce the first Result bit for bit. Scratch reuse inside the
// simulator and observation hooks must never leak into outcomes.
func runMACSim(sc faults.Scenario) (string, error) {
	resA, err := mac.Run(macConfig(sc))
	if err != nil {
		return "", err
	}
	resB, err := mac.Run(macConfig(sc))
	if err != nil {
		return "", err
	}
	if dump(resA) != dump(resB) {
		return "re-run with identical config produced a different Result", nil
	}
	cfg := macConfig(sc)
	cfg.Obs = &obs.Sink{Registry: obs.NewRegistry(), Tracer: obs.NewTracer(1 << 12)}
	resC, err := mac.Run(cfg)
	if err != nil {
		return "", err
	}
	if dump(resA) != dump(resC) {
		return "attaching an obs sink changed the Result", nil
	}
	return "", nil
}

// runScratchFresh pits every reused-workspace decode path against its
// fresh-allocation twin on the same impaired input.
func runScratchFresh(sc faults.Scenario) (string, error) {
	frame, err := fixtureFrame(sc.Seed)
	if err != nil {
		return "", err
	}
	imp := sc.Apply(frame.Samples)

	// Back-to-back full receptions share package pools (softQPool, fec
	// caches); the second must reproduce the first exactly.
	cfg := core.ReceiverConfig{MAC: fixtureMAC(1), UseRTE: true, KnownStart: 0, SoftFEC: true}
	resA, errA := core.ReceiveFrame(imp, cfg)
	resB, errB := core.ReceiveFrame(imp, cfg)
	if dump(resA) != dump(resB) || fmt.Sprint(errA) != fmt.Sprint(errB) {
		return "second ReceiveFrame over warm pools diverged from the first", nil
	}

	buf, h, _, status := phy.Sync(imp, 0)
	if status != phy.StatusOK {
		return "", nil
	}

	// A SoftQDecoder dirtied by a larger decode must match a throwaway
	// decoder on the target subframe, error for error.
	big, target := frame.Subframes[2], frame.Subframes[0]
	_, segBig, err := segmentsFor(buf, h, big, false, true)
	if err != nil {
		return "", err
	}
	_, segTgt, err := segmentsFor(buf, h, target, false, true)
	if err != nil {
		return "", err
	}
	reused := &phy.SoftQDecoder{}
	_, _ = reused.DecodeDataField(segBig.LLRQs, big.MCS, len(big.Payload))
	gotP, gotErr := reused.DecodeDataField(segTgt.LLRQs, target.MCS, len(target.Payload))
	wantP, wantErr := phy.DecodeDataFieldSoftQ(segTgt.LLRQs, target.MCS, len(target.Payload))
	if !bytes.Equal(gotP, wantP) || fmt.Sprint(gotErr) != fmt.Sprint(wantErr) {
		return "reused SoftQDecoder diverged from fresh decode", nil
	}

	// Same for the bare fec.SoftDecoder across frame sizes.
	if len(segTgt.LLRQs) > 0 {
		ncbps := target.MCS.CodedBitsPerSymbol()
		il, err := fec.CachedInterleaver(ncbps, target.MCS.Mod.BitsPerSymbol())
		if err != nil {
			return "", err
		}
		flat := make([]int8, len(segTgt.LLRQs)*ncbps)
		for s := range segTgt.LLRQs {
			if err := il.DeinterleaveLLRInto(flat[s*ncbps:(s+1)*ncbps], segTgt.LLRQs[s]); err != nil {
				return "", err
			}
		}
		numInfo := len(segTgt.LLRQs) * target.MCS.DataBitsPerSymbol()
		var d fec.SoftDecoder
		bigInfo := make([]byte, 2*numInfo)
		bigLLR := make([]int8, 4*numInfo)
		copy(bigLLR, flat)
		if err := d.DecodeInto(bigInfo, bigLLR, fec.Rate1_2, 2*numInfo); err != nil {
			return "", err
		}
		gotBits := make([]byte, numInfo)
		if err := d.DecodeInto(gotBits, flat, target.MCS.Rate, numInfo); err != nil {
			return "", err
		}
		wantBits, err := fec.ViterbiDecodeSoftQ(flat, target.MCS.Rate, numInfo)
		if err != nil {
			return "", err
		}
		if !bytes.Equal(gotBits, wantBits) {
			return "reused fec.SoftDecoder diverged from throwaway decoder", nil
		}
	}

	// Quantized demap into a dirty caller buffer vs fresh allocation.
	if len(buf) >= ofdm.PreambleLen+ofdm.SymbolLen {
		bins, err := ofdm.SymbolBins(buf[ofdm.PreambleLen:])
		if err != nil {
			return "", err
		}
		points := ofdm.ExtractData(bins)
		const noiseVar = 0.7
		fresh, err := modem.DemapSoftQ(modem.QAM64, points, noiseVar)
		if err != nil {
			return "", err
		}
		dirty := make([]int8, len(fresh))
		for i := range dirty {
			dirty[i] = 0x55
		}
		if err := modem.DemapSoftQInto(dirty, modem.QAM64, points, noiseVar); err != nil {
			return "", err
		}
		if !bytes.Equal(int8Bytes(dirty), int8Bytes(fresh)) {
			return "DemapSoftQInto into a dirty buffer diverged from DemapSoftQ", nil
		}
	}
	return "", nil
}

// engineScenario derives the shared engine/simulator workload from the
// scenario identity: sample-domain impairments cannot run inside either
// scheduler, so the scenario hash selects the dead-location set and the
// seed drives the Poisson arrivals. More impairments → more dead
// stations, which keeps shrinking meaningful.
func engineScenario(sc faults.Scenario) (flows [][]traffic.Arrival, dead []int, locs []int) {
	const numSTAs = 6
	hsh := fnv.New64a()
	hsh.Write([]byte(sc.String()))
	h := hsh.Sum64()
	nDead := len(sc.Impairments)
	if nDead > numSTAs-1 {
		nDead = numSTAs - 1
	}
	for i := 0; i < nDead; i++ {
		dead = append(dead, int((h>>uint(8*i))%numSTAs))
	}
	flows = make([][]traffic.Arrival, numSTAs)
	for sta := range flows {
		rng := rand.New(rand.NewSource(sc.Seed + int64(sta)*7919))
		flows[sta] = traffic.PoissonFlow(rng, 350, 500+20*sta, 80*time.Millisecond)
	}
	locs = make([]int, numSTAs)
	for i := range locs {
		locs[i] = i
	}
	return flows, dead, locs
}

// runEngineVsMACSim pits the real-time engine's deterministic mode
// against the discrete-event MAC simulator on the same workload and the
// same location-pure loss oracle. The two schedulers differ in timing and
// contention, but with delivery a pure function of station location and a
// workload that fully drains, per-frame retry exhaustion — and therefore
// delivered bytes per STA and byte-fairness — must agree exactly.
func runEngineVsMACSim(sc faults.Scenario) (string, error) {
	flows, dead, locs := engineScenario(sc)
	numSTAs := len(locs)

	// Lifecycle sampling rides along scenario-derived (0 = off on seed
	// multiples of 4): stamping stage spans must never perturb scheduling
	// or accounting, so the simulator comparison holds regardless.
	engStats, err := engine.RunDeterministic(context.Background(), engine.Config{
		NumSTAs:     numSTAs,
		SampleEvery: int(sc.Seed & 3),
		Transport: &engine.OracleTransport{
			Oracle:    mac.NewLossyLocOracle(dead...),
			Locations: locs,
		},
	}, flows)
	if err != nil {
		return "", err
	}
	if engStats.Pending != 0 {
		return fmt.Sprintf("engine left %d frames pending after a drained deterministic run", engStats.Pending), nil
	}

	macRes, err := mac.Run(mac.Config{
		Protocol: mac.Carpool, NumSTAs: numSTAs, Duration: 2 * time.Second,
		Seed: sc.Seed, Downlink: flows,
		Oracle: mac.NewLossyLocOracle(dead...), STALocations: locs,
	})
	if err != nil {
		return "", err
	}

	for sta := range locs {
		if engStats.DeliveredBytesPerSTA[sta] != macRes.DeliveredBytesPerSTA[sta] {
			return fmt.Sprintf("station %d delivered bytes: engine %d, macsim %d (dead=%v)",
				sta, engStats.DeliveredBytesPerSTA[sta], macRes.DeliveredBytesPerSTA[sta], dead), nil
		}
	}
	if d := engStats.ByteFairnessIndex - macRes.ByteFairnessIndex; d > 1e-12 || d < -1e-12 {
		return fmt.Sprintf("byte-fairness: engine %.15f, macsim %.15f",
			engStats.ByteFairnessIndex, macRes.ByteFairnessIndex), nil
	}
	return "", nil
}

// runBatchedVsUnbatched drives the identical seeded workload through the
// per-frame deterministic runner and its batched twin — arrivals
// serialized to wire records, parsed by the in-place slab parser, and
// admitted through the batch core — and requires bit-identical Stats.
// Both transport forms run: size-only frames and retained payloads (the
// arena-backed path the PHY transport uses). Lifecycle sampling is
// deliberately asymmetric — off on the per-frame arm, every 3rd frame on
// the batched arm — so the dump-string equality also proves sampling
// leaves Stats byte-identical.
func runBatchedVsUnbatched(sc faults.Scenario) (string, error) {
	flows, dead, locs := engineScenario(sc)
	for _, retain := range []bool{false, true} {
		cfg := func(sample int) engine.Config {
			return engine.Config{
				NumSTAs:        len(locs),
				RetainPayloads: retain,
				SampleEvery:    sample,
				Transport: &engine.OracleTransport{
					Oracle:    mac.NewLossyLocOracle(dead...),
					Locations: locs,
				},
			}
		}
		plain, err := engine.RunDeterministic(context.Background(), cfg(0), flows)
		if err != nil {
			return "", err
		}
		batched, err := engine.RunDeterministicBatched(context.Background(), cfg(3), flows)
		if err != nil {
			return "", err
		}
		if dump(plain) != dump(batched) {
			return fmt.Sprintf("batched serving path diverged (retain=%v, sampled arm=batched):\n  per-frame %+v\n  batched   %+v",
				retain, *plain, *batched), nil
		}
	}
	return "", nil
}

// runShardedVsUnsharded holds the sharded admission path to the
// single-lane engine on the identical seeded workload. Three arms:
// the default deterministic run (the runner forces one shard), an
// explicit AdmissionShards=1 run, and an AdmissionShards=3 run. The
// explicit-1 arm must reproduce the default arm's Stats bit for bit —
// one lane's strided STA walk degenerates to the pre-shard iteration
// exactly. The 3-shard arm plans per lane, so transmission grouping
// and timing legitimately differ, but with a location-pure loss oracle
// and a fully drained workload, per-frame retry exhaustion is
// schedule-independent: delivered bytes per STA and Jain byte-fairness
// must match exactly, and nothing may be left pending. The batched
// 3-shard arm (wire records → slab parser → partitioned batch
// admission) must reproduce the per-frame 3-shard arm bit for bit,
// proving the counting-sort partition preserves per-STA admission
// order across lanes.
func runShardedVsUnsharded(sc faults.Scenario) (string, error) {
	flows, dead, locs := engineScenario(sc)
	cfg := func(shards int) engine.Config {
		return engine.Config{
			NumSTAs:         len(locs),
			AdmissionShards: shards,
			SampleEvery:     int(sc.Seed & 3),
			Transport: &engine.OracleTransport{
				Oracle:    mac.NewLossyLocOracle(dead...),
				Locations: locs,
			},
		}
	}
	base, err := engine.RunDeterministic(context.Background(), cfg(0), flows)
	if err != nil {
		return "", err
	}
	one, err := engine.RunDeterministic(context.Background(), cfg(1), flows)
	if err != nil {
		return "", err
	}
	if dump(base) != dump(one) {
		return fmt.Sprintf("explicit AdmissionShards=1 diverged from the default single lane:\n  default %+v\n  shards1 %+v",
			*base, *one), nil
	}
	sharded, err := engine.RunDeterministic(context.Background(), cfg(3), flows)
	if err != nil {
		return "", err
	}
	if sharded.Pending != 0 {
		return fmt.Sprintf("3-shard engine left %d frames pending after a drained run", sharded.Pending), nil
	}
	if base.Accepted != sharded.Accepted || base.Delivered != sharded.Delivered ||
		base.Dropped != sharded.Dropped || base.Expired != sharded.Expired {
		return fmt.Sprintf("3-shard outcome counts diverged: accepted %d/%d delivered %d/%d dropped %d/%d expired %d/%d",
			base.Accepted, sharded.Accepted, base.Delivered, sharded.Delivered,
			base.Dropped, sharded.Dropped, base.Expired, sharded.Expired), nil
	}
	for sta := range locs {
		if base.DeliveredBytesPerSTA[sta] != sharded.DeliveredBytesPerSTA[sta] {
			return fmt.Sprintf("station %d delivered bytes: 1 shard %d, 3 shards %d (dead=%v)",
				sta, base.DeliveredBytesPerSTA[sta], sharded.DeliveredBytesPerSTA[sta], dead), nil
		}
	}
	if d := base.ByteFairnessIndex - sharded.ByteFairnessIndex; d > 1e-12 || d < -1e-12 {
		return fmt.Sprintf("byte-fairness: 1 shard %.15f, 3 shards %.15f",
			base.ByteFairnessIndex, sharded.ByteFairnessIndex), nil
	}
	batched, err := engine.RunDeterministicBatched(context.Background(), cfg(3), flows)
	if err != nil {
		return "", err
	}
	if dump(sharded) != dump(batched) {
		return fmt.Sprintf("batched 3-shard arm diverged from per-frame 3-shard arm:\n  per-frame %+v\n  batched   %+v",
			*sharded, *batched), nil
	}
	return "", nil
}

// runFECVsRetry pits the erasure-coded engine against the shared-fate
// retry engine in three arms. Delivery under a location-pure oracle is
// schedule-independent — an alive station's frames always land within the
// retry budget, a dead station's never do — so even though the two
// strategies build different aggregates (parity subframes squeeze the
// data caps), their delivered bytes per STA and Jain byte-fairness must
// agree exactly on any workload that fully drains.
//
//  1. Equality: StrategyFEC (XOR or RS parity, scenario-alternated)
//     under the scenario's dead-location oracle vs the plain retry
//     engine — same per-STA bytes, same fairness, nothing pending.
//  2. Recovery: a lossless channel where scenario-chosen stations always
//     lose their own subframe off the air. One parity shard repairs
//     every such erasure, so the FEC engine must reproduce the lossless
//     retry run byte for byte — with zero retries, zero decode
//     failures, and at least one parity recovery actually exercised.
//     This is the arm that catches a corrupted GF(256) multiply
//     (InjectBug "gfmul"): recovery is byte-true, so wrong parity turns
//     into failed deliveries, never into silently wrong payloads.
func runFECVsRetry(sc faults.Scenario) (string, error) {
	flows, dead, locs := engineScenario(sc)
	numSTAs := len(locs)
	hsh := fnv.New64a()
	hsh.Write([]byte(sc.String()))
	h := hsh.Sum64()

	// Arm 1: same lossy oracle, both strategies.
	retrySt, err := engine.RunDeterministic(context.Background(), engine.Config{
		NumSTAs: numSTAs,
		Transport: &engine.OracleTransport{
			Oracle:    mac.NewLossyLocOracle(dead...),
			Locations: locs,
		},
	}, flows)
	if err != nil {
		return "", err
	}
	fecSt, err := engine.RunDeterministic(context.Background(), engine.Config{
		NumSTAs:   numSTAs,
		Strategy:  engine.StrategyFEC,
		FECParity: 1 + int(h%2), // alternate XOR parity and RS across scenarios
		Transport: &engine.CodedOracleTransport{
			OracleTransport: engine.OracleTransport{
				Oracle:    mac.NewLossyLocOracle(dead...),
				Locations: locs,
			},
		},
	}, flows)
	if err != nil {
		return "", err
	}
	if retrySt.Pending != 0 || fecSt.Pending != 0 {
		return fmt.Sprintf("undrained run: retry pending %d, fec pending %d", retrySt.Pending, fecSt.Pending), nil
	}
	for sta := range locs {
		if retrySt.DeliveredBytesPerSTA[sta] != fecSt.DeliveredBytesPerSTA[sta] {
			return fmt.Sprintf("station %d delivered bytes: retry %d, fec %d (dead=%v)",
				sta, retrySt.DeliveredBytesPerSTA[sta], fecSt.DeliveredBytesPerSTA[sta], dead), nil
		}
	}
	if d := retrySt.ByteFairnessIndex - fecSt.ByteFairnessIndex; d > 1e-12 || d < -1e-12 {
		return fmt.Sprintf("byte-fairness: retry %.15f, fec %.15f",
			retrySt.ByteFairnessIndex, fecSt.ByteFairnessIndex), nil
	}

	// Arm 2: lossless channel, but the scenario's lossy stations always
	// lose their own subframe — recoverable from one parity shard, so the
	// FEC engine must match the lossless retry engine with no retries.
	// At least one station is always lossy, so even the bare-seed
	// scenario exercises recovery (and a shrink bottoms out there).
	lossy := map[int]bool{int(h>>16) % numSTAs: true}
	for i := range sc.Impairments {
		lossy[int(h>>uint(8*i))%numSTAs] = true
	}
	losslessSt, err := engine.RunDeterministic(context.Background(), engine.Config{
		NumSTAs:   numSTAs,
		Transport: &engine.OracleTransport{Locations: locs},
	}, flows)
	if err != nil {
		return "", err
	}
	recSt, err := engine.RunDeterministic(context.Background(), engine.Config{
		NumSTAs:   numSTAs,
		Strategy:  engine.StrategyFEC,
		FECParity: 2, // RS proper: recovery multiplies by real GF(256) inverses
		Transport: &engine.CodedOracleTransport{
			OracleTransport: engine.OracleTransport{Locations: locs},
			ErasePattern: func(seq uint64, sta, shard int, own bool) bool {
				return own && lossy[sta]
			},
			CorruptParity: corruptParity, // no-op unless InjectBug("gfmul")
		},
	}, flows)
	if err != nil {
		return "", err
	}
	if recSt.Pending != 0 {
		return fmt.Sprintf("recovery arm left %d frames pending", recSt.Pending), nil
	}
	for sta := range locs {
		if losslessSt.DeliveredBytesPerSTA[sta] != recSt.DeliveredBytesPerSTA[sta] {
			return fmt.Sprintf("station %d delivered bytes: lossless retry %d, fec-recovered %d (lossy=%v)",
				sta, losslessSt.DeliveredBytesPerSTA[sta], recSt.DeliveredBytesPerSTA[sta], lossy), nil
		}
	}
	if recSt.FECRecovered == 0 {
		return fmt.Sprintf("recovery arm repaired nothing (lossy=%v); the pair exercised no parity path", lossy), nil
	}
	if recSt.FECDecodeFail != 0 || recSt.Retries != 0 {
		return fmt.Sprintf("recovery arm fell back to retry: decode_fail %d, retries %d (single own-subframe erasures must be within parity's reach)",
			recSt.FECDecodeFail, recSt.Retries), nil
	}
	return "", nil
}

// runClusterVsSingle pits the multi-AP cluster's deterministic runner
// against the bare engine in three arms, under the scenario's
// dead-location oracle. Delivery is location-pure and every workload
// drains, so partitioning stations across APs (and moving them between
// APs mid-run) must not change any station's delivered bytes.
//
//  1. Transparency: a one-AP cluster is the bare engine — Stats (the
//     rollup AND the single per-AP entry) dump-identical to
//     engine.RunDeterministic on the same flows.
//  2. Partition: three APs under AllPolicy (no interference matrix, so
//     concurrent slots are independent) — identical per-STA delivered
//     bytes and Jain byte-fairness, nothing pending.
//  3. Roaming: the same three APs with scenario-derived roam events
//     mid-run — handoffs are lossless, so per-STA bytes still match.
func runClusterVsSingle(sc faults.Scenario) (string, error) {
	flows, dead, locs := engineScenario(sc)
	numSTAs := len(locs)
	ecfg := engine.Config{
		NumSTAs:     numSTAs,
		SampleEvery: int(sc.Seed & 3),
		Transport: &engine.OracleTransport{
			Oracle:    mac.NewLossyLocOracle(dead...),
			Locations: locs,
		},
	}
	base, err := engine.RunDeterministic(context.Background(), ecfg, flows)
	if err != nil {
		return "", err
	}

	// Arm 1: one AP is the bare engine, bit for bit.
	oneSt, err := cluster.RunDeterministic(context.Background(),
		cluster.Config{APs: 1, Engine: ecfg}, flows, nil, 0)
	if err != nil {
		return "", err
	}
	if dump(base) != dump(&oneSt.Total) {
		return fmt.Sprintf("one-AP cluster rollup diverged from the bare engine:\n  engine  %+v\n  cluster %+v",
			*base, oneSt.Total), nil
	}
	if dump(base) != dump(&oneSt.PerAP[0]) {
		return fmt.Sprintf("one-AP cluster per-AP entry diverged from the bare engine:\n  engine %+v\n  per-AP %+v",
			*base, oneSt.PerAP[0]), nil
	}

	// Arm 2: three APs, stations partitioned by rendezvous hash.
	multiSt, err := cluster.RunDeterministic(context.Background(),
		cluster.Config{APs: 3, Channels: 3, Engine: ecfg}, flows, nil, 0)
	if err != nil {
		return "", err
	}
	if multiSt.Total.Pending != 0 {
		return fmt.Sprintf("3-AP cluster left %d frames pending after a drained run", multiSt.Total.Pending), nil
	}
	for sta := range locs {
		if base.DeliveredBytesPerSTA[sta] != multiSt.Total.DeliveredBytesPerSTA[sta] {
			return fmt.Sprintf("station %d delivered bytes: single %d, 3-AP %d (dead=%v)",
				sta, base.DeliveredBytesPerSTA[sta], multiSt.Total.DeliveredBytesPerSTA[sta], dead), nil
		}
	}
	if d := base.ByteFairnessIndex - multiSt.Total.ByteFairnessIndex; d > 1e-12 || d < -1e-12 {
		return fmt.Sprintf("byte-fairness: single %.15f, 3-AP %.15f",
			base.ByteFairnessIndex, multiSt.Total.ByteFairnessIndex), nil
	}

	// Arm 3: scenario-derived handoffs mid-run. Events pin stations to
	// scenario-hashed APs at hashed instants inside the arrival window.
	hsh := fnv.New64a()
	hsh.Write([]byte(sc.String()))
	h := hsh.Sum64()
	var roams []cluster.RoamEvent
	nRoams := 2 + int(h%5)
	for i := 0; i < nRoams; i++ {
		hi := h >> uint(7*i%57)
		roams = append(roams, cluster.RoamEvent{
			At:  time.Duration(5+int(hi%70)) * time.Millisecond,
			STA: int(hi>>8) % numSTAs,
			AP:  int(hi>>16) % 3,
		})
	}
	roamSt, err := cluster.RunDeterministic(context.Background(),
		cluster.Config{APs: 3, Channels: 3, Engine: ecfg}, flows, roams, 0)
	if err != nil {
		return "", err
	}
	if roamSt.Total.Pending != 0 {
		return fmt.Sprintf("roaming cluster left %d frames pending after a drained run", roamSt.Total.Pending), nil
	}
	for sta := range locs {
		if base.DeliveredBytesPerSTA[sta] != roamSt.Total.DeliveredBytesPerSTA[sta] {
			return fmt.Sprintf("station %d delivered bytes: single %d, roaming 3-AP %d (roams=%v)",
				sta, base.DeliveredBytesPerSTA[sta], roamSt.Total.DeliveredBytesPerSTA[sta], roams), nil
		}
	}
	return "", nil
}

func int8Bytes(s []int8) []byte {
	out := make([]byte, len(s))
	for i, v := range s {
		out[i] = byte(v)
	}
	return out
}
