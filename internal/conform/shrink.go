package conform

import "carpool/internal/faults"

// Shrink minimizes a failing scenario for the pair in two greedy passes —
// drop whole impairments, then replace survivors with milder variants —
// re-checking after each candidate edit and keeping only edits that still
// diverge. maxChecks bounds the total pair evaluations (<= 0 selects 200).
// The returned scenario always still fails, with its divergence detail.
func Shrink(p Pair, sc faults.Scenario, maxChecks int) (faults.Scenario, string) {
	if maxChecks <= 0 {
		maxChecks = 200
	}
	checks := 0
	// fails re-runs the pair, charging the budget. Harness errors count as
	// divergence here exactly as in Run, so shrinking never "fixes" a
	// scenario by trading a divergence for a crash.
	fails := func(cand faults.Scenario) (string, bool) {
		if checks >= maxChecks {
			return "", false
		}
		checks++
		detail, err := p.Check(cand)
		if err != nil {
			return "harness error: " + err.Error(), true
		}
		return detail, detail != ""
	}

	best := sc
	detail := ""
	if d, bad := fails(sc); bad {
		detail = d
	} else {
		// Not reproducible within budget (or flaky): return as-is.
		return sc, ""
	}

	// Pass 1: drop impairments, scanning until a full sweep removes none.
	for removed := true; removed; {
		removed = false
		for i := 0; i < len(best.Impairments); i++ {
			cand := best.Without(i)
			if d, bad := fails(cand); bad {
				best, detail = cand, d
				removed = true
				i--
			}
		}
	}

	// Pass 2: milden surviving impairments, repeatedly, while any milder
	// variant still reproduces the divergence.
	for mildened := true; mildened; {
		mildened = false
		for i, imp := range best.Impairments {
			m, ok := imp.(faults.Milder)
			if !ok {
				continue
			}
			for _, v := range m.MilderVariants() {
				cand := best.Replace(i, v)
				if d, bad := fails(cand); bad {
					best, detail = cand, d
					mildened = true
					break
				}
			}
		}
	}
	return best, detail
}
