package conform

import (
	"strings"
	"testing"

	"carpool/internal/faults"
	"carpool/internal/obs"
)

// TestShortMatrixConforms is the harness's own health check: on an
// unmodified build, every differential pair must conform over the whole
// PR-gating matrix.
func TestShortMatrixConforms(t *testing.T) {
	matrix := ShortMatrix()
	if testing.Short() {
		matrix = matrix[:6]
	}
	failures := Run(Pairs(), matrix, Options{})
	for _, f := range failures {
		t.Errorf("%s under %q: %s", f.Pair, f.Scenario.String(), f.Detail)
	}
}

// TestShortMatrixCoversAllKinds pins the acceptance requirement that the
// short matrix exercises at least five distinct impairment kinds.
func TestShortMatrixCoversAllKinds(t *testing.T) {
	seen := map[string]bool{}
	for _, sc := range ShortMatrix() {
		for _, imp := range sc.Impairments {
			seen[imp.Kind()] = true
		}
	}
	for _, kind := range faults.Kinds() {
		if !seen[kind] {
			t.Errorf("short matrix never applies impairment kind %q", kind)
		}
	}
	if len(seen) < 5 {
		t.Fatalf("short matrix covers %d impairment kinds, want >= 5", len(seen))
	}
}

// TestInjectedBugCaughtAndShrunk proves the harness end to end: arming the
// LLR-sign-flip bug must make the int8 fast-path pairs diverge, the
// shrinker must reduce the reproduction to at most 3 impairments, and the
// replay token must reproduce the divergence while the bug is armed and
// conform once disarmed.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	if err := InjectBug(BugLLRSign); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := InjectBug(""); err != nil {
			t.Fatal(err)
		}
	}()

	for _, name := range []string{"demap-quant", "viterbi-soft"} {
		p, ok := PairByName(name)
		if !ok {
			t.Fatalf("pair %q missing", name)
		}
		failures := Run([]Pair{p}, ShortMatrix()[:4], Options{Shrink: true})
		if len(failures) == 0 {
			t.Fatalf("%s: injected %s bug not caught", name, BugLLRSign)
		}
		f := failures[0]
		if n := len(f.Shrunk.Impairments); n > 3 {
			t.Errorf("%s: shrunk scenario still has %d impairments (> 3): %q", name, n, f.Replay())
		}
		if f.ShrunkDetail == "" {
			t.Errorf("%s: shrunk scenario carries no divergence detail", name)
		}

		// Replay the token exactly as cmd/conform -replay would.
		pairName, scStr, found := strings.Cut(f.Replay(), "|")
		if !found || pairName != name {
			t.Fatalf("%s: malformed replay token %q", name, f.Replay())
		}
		sc, err := faults.ParseScenario(scStr)
		if err != nil {
			t.Fatalf("%s: replay token does not parse: %v", name, err)
		}
		detail, err := p.Check(sc)
		if err != nil {
			t.Fatalf("%s: replay errored: %v", name, err)
		}
		if detail == "" {
			t.Errorf("%s: replay of %q no longer diverges", name, f.Replay())
		}
	}

	// Disarmed, the shrunk scenarios must conform again.
	if err := InjectBug(""); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"demap-quant", "viterbi-soft"} {
		p, _ := PairByName(name)
		if detail, err := p.Check(faults.Scenario{Seed: 1}); err != nil || detail != "" {
			t.Errorf("%s: clean build diverges after disarm: %q err %v", name, detail, err)
		}
	}
}

// TestInjectedGFMulBugCaughtAndShrunk proves the erasure wall end to end:
// arming the wrong-reduction-polynomial bug must make the fec-vs-retry
// pair's recovery arm diverge (byte-true recovery turns corrupted parity
// into failed deliveries), the shrinker must bottom out at the seed-only
// scenario (the bug fires on every scenario), and the replay token must
// reproduce the divergence while armed and conform once disarmed.
func TestInjectedGFMulBugCaughtAndShrunk(t *testing.T) {
	if err := InjectBug(BugGFMul); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := InjectBug(""); err != nil {
			t.Fatal(err)
		}
	}()

	p, ok := PairByName("fec-vs-retry")
	if !ok {
		t.Fatal("pair fec-vs-retry missing")
	}
	failures := Run([]Pair{p}, ShortMatrix()[:4], Options{Shrink: true})
	if len(failures) == 0 {
		t.Fatalf("injected %s bug not caught", BugGFMul)
	}
	f := failures[0]
	if n := len(f.Shrunk.Impairments); n != 0 {
		t.Errorf("shrunk scenario still has %d impairments (corruption is scenario-independent): %q", n, f.Replay())
	}
	if f.ShrunkDetail == "" {
		t.Error("shrunk scenario carries no divergence detail")
	}

	pairName, scStr, found := strings.Cut(f.Replay(), "|")
	if !found || pairName != "fec-vs-retry" {
		t.Fatalf("malformed replay token %q", f.Replay())
	}
	sc, err := faults.ParseScenario(scStr)
	if err != nil {
		t.Fatalf("replay token does not parse: %v", err)
	}
	detail, err := p.Check(sc)
	if err != nil {
		t.Fatalf("replay errored: %v", err)
	}
	if detail == "" {
		t.Errorf("replay of %q no longer diverges", f.Replay())
	}

	if err := InjectBug(""); err != nil {
		t.Fatal(err)
	}
	if detail, err := p.Check(faults.Scenario{Seed: 1}); err != nil || detail != "" {
		t.Errorf("clean build diverges after disarm: %q err %v", detail, err)
	}
}

// TestInjectBugRejectsUnknown pins the injection API's error contract.
func TestInjectBugRejectsUnknown(t *testing.T) {
	if err := InjectBug("no-such-bug"); err == nil {
		t.Fatal("unknown bug name accepted")
	}
	if got := InjectedBug(); got != "" {
		t.Fatalf("failed InjectBug armed %q", got)
	}
}

// TestShrinkReducesComposite checks the shrinker actually minimizes: a
// 3-impairment scenario that fails only because of the armed bug (which
// fails even with zero impairments) must shrink to the empty scenario.
func TestShrinkReducesComposite(t *testing.T) {
	if err := InjectBug(BugLLRSign); err != nil {
		t.Fatal(err)
	}
	defer InjectBug("")
	p, _ := PairByName("viterbi-soft")
	sc := faults.Scenario{Seed: 11, Impairments: []faults.Impairment{
		faults.AWGN{SNRdB: 22},
		faults.CFO{EpsRad: 0.003},
		faults.PhaseJitter{SigmaRad: 0.02},
	}}
	shrunk, detail := Shrink(p, sc, 0)
	if len(shrunk.Impairments) != 0 {
		t.Errorf("shrunk to %d impairments (%q), want 0", len(shrunk.Impairments), shrunk.String())
	}
	if detail == "" {
		t.Error("shrunk scenario has no divergence detail")
	}
}

// TestRunCountsChecks verifies the conform.* obs counters.
func TestRunCountsChecks(t *testing.T) {
	reg := obs.NewRegistry()
	obs.Enable(&obs.Sink{Registry: reg})
	defer obs.Disable()

	p, _ := PairByName("demap-quant")
	matrix := ShortMatrix()[:3]
	Run([]Pair{p}, matrix, Options{})

	snap := reg.Snapshot()
	if got := snap.Counters["conform.checks"]; got != int64(len(matrix)) {
		t.Errorf("conform.checks = %d, want %d", got, len(matrix))
	}
	if got := snap.Counters["conform.divergences"]; got != 0 {
		t.Errorf("conform.divergences = %d, want 0", got)
	}
}

// TestMatrixByName pins the name->matrix mapping and its error.
func TestMatrixByName(t *testing.T) {
	short, err := MatrixByName("short")
	if err != nil || len(short) == 0 {
		t.Fatalf("short matrix: %v", err)
	}
	full, err := MatrixByName("full")
	if err != nil || len(full) <= len(short) {
		t.Fatalf("full matrix should extend short: %d vs %d (%v)", len(full), len(short), err)
	}
	if _, err := MatrixByName("weekly"); err == nil {
		t.Fatal("unknown matrix name accepted")
	}
}

// TestPairByName checks lookup and the pair roster.
func TestPairByName(t *testing.T) {
	want := []string{"demap-quant", "viterbi-soft", "receive-seq-par", "mac-sim", "scratch-fresh", "engine-vs-macsim", "batched-vs-unbatched", "sharded-vs-unsharded", "fec-vs-retry", "cluster-vs-single"}
	if got := Pairs(); len(got) != len(want) {
		t.Fatalf("%d pairs, want %d", len(got), len(want))
	}
	for _, name := range want {
		p, ok := PairByName(name)
		if !ok || p.Name != name {
			t.Errorf("PairByName(%q) = %v, %v", name, p.Name, ok)
		}
		if p.Bound == "" || p.Desc == "" {
			t.Errorf("pair %q missing Bound/Desc documentation", name)
		}
	}
	if _, ok := PairByName("nope"); ok {
		t.Error("unknown pair name resolved")
	}
}
