package energy

import (
	"math"
	"testing"
	"time"

	"carpool/internal/bloom"
)

func TestBudgetEnergy(t *testing.T) {
	b := Budget{Tx: time.Second, Rx: 2 * time.Second, Idle: 7 * time.Second}
	want := 1.71 + 2*1.66 + 7*1.22
	if got := b.Energy(); math.Abs(got-want) > 1e-9 {
		t.Errorf("energy %v, want %v", got, want)
	}
	if b.Total() != 10*time.Second {
		t.Error("total wrong")
	}
	if got := b.MeanPower(); math.Abs(got-want/10) > 1e-9 {
		t.Errorf("mean power %v", got)
	}
	if (Budget{}).MeanPower() != IdlePowerW {
		t.Error("empty budget should draw idle power")
	}
}

func TestStationBudget(t *testing.T) {
	dur := 10 * time.Second
	// Legacy station decodes every overheard frame.
	legacy, err := StationBudget(dur, time.Second, time.Second, 4*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Rx != 5*time.Second || legacy.Idle != 4*time.Second {
		t.Errorf("legacy budget %+v", legacy)
	}
	// Carpool station drops foreign frames after ~5% of their airtime.
	carpool, err := StationBudget(dur, time.Second, time.Second, 4*time.Second, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if carpool.Energy() >= legacy.Energy() {
		t.Error("Carpool A-HDR dropping should save energy")
	}
	// Validation.
	if _, err := StationBudget(dur, time.Second, time.Second, time.Second, 2); err == nil {
		t.Error("accepted fraction > 1")
	}
	if _, err := StationBudget(time.Second, time.Second, time.Second, 0, 1); err == nil {
		t.Error("accepted busy > duration")
	}
}

func TestFalsePositiveRxOverheadBound(t *testing.T) {
	// §8: limited to 8 receivers with h = 4, the extra RX power is at most
	// 5.59%.
	got := FalsePositiveRxOverhead(8, bloom.DefaultHashes)
	if got > 0.06 || got < 0.05 {
		t.Errorf("overhead %.4f, want ~0.0559", got)
	}
}

func TestNodeEnergyOverheadHeadline(t *testing.T) {
	// §8: "a Carpool node spent at most 5.59% x 5% = 0.28% more energy
	// than a standard Wi-Fi node" for clients that are 90% idle.
	got, err := NodeEnergyOverhead(8, bloom.DefaultHashes, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.0028) > 0.0005 {
		t.Errorf("node overhead %.4f, want ~0.0028", got)
	}
	if _, err := NodeEnergyOverhead(8, 4, 1.5); err == nil {
		t.Error("accepted idle share > 1")
	}
}

func TestPowerModelConstants(t *testing.T) {
	// The published WPC55AG numbers.
	if TxPowerW != 1.71 || RxPowerW != 1.66 || IdlePowerW != 1.22 {
		t.Error("power model constants drifted from the paper")
	}
}
