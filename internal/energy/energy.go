// Package energy implements the paper's §8 energy analysis: the LinkSys
// WPC55AG device power model from E-MiLi (Zhang & Shin), per-station energy
// accounting over MAC-simulation airtimes, and the bound on Carpool's extra
// receive cost from Bloom-filter false positives.
package energy

import (
	"fmt"
	"time"

	"carpool/internal/bloom"
)

// Device power draw in watts (measured on a LinkSys WPC55AG NIC [27]).
const (
	TxPowerW   = 1.71
	RxPowerW   = 1.66
	IdlePowerW = 1.22
)

// Budget is one station's time split across radio states.
type Budget struct {
	Tx   time.Duration
	Rx   time.Duration
	Idle time.Duration
}

// Total returns the summed duration.
func (b Budget) Total() time.Duration { return b.Tx + b.Rx + b.Idle }

// Energy returns the consumed energy in joules.
func (b Budget) Energy() float64 {
	return TxPowerW*b.Tx.Seconds() + RxPowerW*b.Rx.Seconds() + IdlePowerW*b.Idle.Seconds()
}

// MeanPower returns the average draw in watts (idle power for an empty
// budget).
func (b Budget) MeanPower() float64 {
	t := b.Total().Seconds()
	if t == 0 {
		return IdlePowerW
	}
	return b.Energy() / t
}

// StationBudget classifies one station's simulation airtimes into a Budget.
// Overheard frames cost receive power for legacy stations, which must
// decode every frame to learn it is not theirs; a Carpool station drops
// foreign frames after the two-symbol A-HDR and idles through the rest.
// ahdrFraction is the decoded share of each overheard frame (A-HDR symbols
// over mean frame symbols); pass 1 for legacy behaviour.
func StationBudget(duration, tx, rxOwn, overhear time.Duration, ahdrFraction float64) (Budget, error) {
	if ahdrFraction < 0 || ahdrFraction > 1 {
		return Budget{}, fmt.Errorf("energy: A-HDR fraction %v outside [0,1]", ahdrFraction)
	}
	busy := tx + rxOwn
	overheardRx := time.Duration(float64(overhear) * ahdrFraction)
	busy += overheardRx
	if busy > duration {
		return Budget{}, fmt.Errorf("energy: busy time %v exceeds duration %v", busy, duration)
	}
	return Budget{
		Tx:   tx,
		Rx:   rxOwn + overheardRx,
		Idle: duration - busy,
	}, nil
}

// FalsePositiveRxOverhead bounds the extra receive power a Carpool station
// spends decoding irrelevant subframes due to Bloom false positives, as a
// fraction of its receive power (§8: at most 5.59% for 8 receivers, h = 4).
func FalsePositiveRxOverhead(numReceivers, hashes int) float64 {
	return bloom.FalsePositiveRate(numReceivers, hashes)
}

// NodeEnergyOverhead reproduces the §8 headline bound: for a client whose
// energy is idleShare in IL with the remaining split evenly between TX and
// RX (the E-MiLi busy-network profile: >92% of clients spend ~90% idle),
// the worst-case Carpool overhead is the false-positive ratio applied to
// the RX share.
func NodeEnergyOverhead(numReceivers, hashes int, idleShare float64) (float64, error) {
	if idleShare < 0 || idleShare > 1 {
		return 0, fmt.Errorf("energy: idle share %v outside [0,1]", idleShare)
	}
	rxShare := (1 - idleShare) / 2
	return FalsePositiveRxOverhead(numReceivers, hashes) * rxShare, nil
}
