// Package channel simulates the radio channel between Carpool nodes: a
// tapped-delay-line multipath model with Rician per-tap fading, first-order
// Gauss-Markov time variation (the coherence-time effect that causes the
// paper's BER bias), carrier frequency offset, and AWGN.
//
// It also provides the calibration from the paper's USRP "power magnitude"
// knob (0.0125 .. 0.2) to SNR, and a synthetic 10 m x 10 m office layout
// with 30 receiver locations mirroring the paper's testbed (Fig. 10).
package channel

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"carpool/internal/dsp"
)

// Config describes one transmitter->receiver link.
type Config struct {
	// SNRdB is the average received signal-to-noise ratio.
	SNRdB float64
	// NumTaps is the number of multipath taps (>= 1). Tap powers follow an
	// exponential decay profile.
	NumTaps int
	// RicianK is the ratio of line-of-sight to scattered power (linear).
	// Zero selects pure Rayleigh scattering.
	RicianK float64
	// TapDecay is the exponential power-delay decay rate: tap l carries
	// relative power exp(-TapDecay*l). Zero selects 1.0. Larger values
	// model more line-of-sight-dominated (flatter) channels.
	TapDecay float64
	// CoherenceSymbols controls time variation: the number of OFDM symbols
	// over which the tap autocorrelation falls to 1/e. Zero or negative
	// disables time variation (a block-fading channel).
	CoherenceSymbols float64
	// CFOHz is the residual carrier frequency offset in Hz at the 20 MHz
	// nominal sample rate.
	CFOHz float64
	// UpdateInterval is the number of samples between fading updates.
	// Defaults to 80 (one OFDM symbol) when zero.
	UpdateInterval int
	// Fading selects the tap time-variation process: the default
	// Gauss-Markov AR(1), or the Jakes sum-of-sinusoids model with its
	// Bessel autocorrelation.
	Fading FadingModel
	// Seed makes the link deterministic.
	Seed int64
}

// Model is a stateful channel instance. Successive Transmit calls continue
// the same fading process, emulating back-to-back frames on one link.
type Model struct {
	cfg     Config
	rng     *rand.Rand
	noise   *dsp.GaussianSource
	taps    []complex128 // current tap gains
	mean    []complex128 // Rician LoS component per tap
	sigma   []float64    // scattered std-dev per tap
	rho     float64      // per-update AR(1) coefficient
	jakes   []*jakesProcess
	epsRad  float64 // CFO in radians/sample
	clock   int     // absolute sample counter across Transmit calls
	upEvery int
}

// New validates cfg and builds a channel model.
func New(cfg Config) (*Model, error) {
	if cfg.NumTaps < 1 {
		return nil, fmt.Errorf("channel: NumTaps must be >= 1, got %d", cfg.NumTaps)
	}
	if cfg.RicianK < 0 {
		return nil, fmt.Errorf("channel: RicianK must be >= 0, got %v", cfg.RicianK)
	}
	m := &Model{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		epsRad:  2 * math.Pi * cfg.CFOHz / SampleRate,
		upEvery: cfg.UpdateInterval,
	}
	if m.upEvery <= 0 {
		m.upEvery = 80
	}
	m.noise = dsp.NewGaussianSource(m.rng)

	// Exponentially decaying power-delay profile, normalized to unit total
	// power so SNRdB means what it says.
	decay := cfg.TapDecay
	if decay == 0 {
		decay = 1
	}
	profile := make([]float64, cfg.NumTaps)
	var total float64
	for l := range profile {
		profile[l] = math.Exp(-decay * float64(l))
		total += profile[l]
	}
	k := cfg.RicianK
	m.taps = make([]complex128, cfg.NumTaps)
	m.mean = make([]complex128, cfg.NumTaps)
	m.sigma = make([]float64, cfg.NumTaps)
	for l := range profile {
		p := profile[l] / total
		// Split tap power between a fixed LoS part and a scattered part.
		los := math.Sqrt(p * k / (k + 1))
		scat := math.Sqrt(p / (k + 1))
		phase := m.rng.Float64() * 2 * math.Pi
		m.mean[l] = complex(los*math.Cos(phase), los*math.Sin(phase))
		m.sigma[l] = scat
	}

	if cfg.CoherenceSymbols > 0 {
		updatesPerSymbol := 80.0 / float64(m.upEvery)
		switch cfg.Fading {
		case Jakes:
			m.rho = 1 // jakes drives the scatter instead of AR(1)
			m.jakes = make([]*jakesProcess, cfg.NumTaps)
			for l := range m.jakes {
				m.jakes[l] = newJakesProcess(m.rng, 8, cfg.CoherenceSymbols*updatesPerSymbol)
			}
		default:
			// AR(1): autocorrelation after n updates is rho^n; set rho so
			// that it reaches 1/e after CoherenceSymbols symbols.
			m.rho = math.Exp(-1 / (cfg.CoherenceSymbols * updatesPerSymbol))
		}
	} else {
		m.rho = 1 // frozen fading state
	}

	m.drawInitialTaps()
	return m, nil
}

// SampleRate matches the OFDM layer's nominal 20 MHz.
const SampleRate = 20e6

func (m *Model) drawInitialTaps() {
	for l := range m.taps {
		m.taps[l] = m.mean[l] + m.noise.Sample(m.sigma[l]*m.sigma[l])
	}
}

// evolve advances every tap one step around its Rician mean: AR(1) by
// default, or the Jakes sum-of-sinusoids process when configured.
func (m *Model) evolve() {
	if m.jakes != nil {
		for l := range m.taps {
			m.taps[l] = m.mean[l] + complex(m.sigma[l], 0)*m.jakes[l].step()
		}
		return
	}
	if m.rho >= 1 {
		return
	}
	drive := math.Sqrt(1 - m.rho*m.rho)
	for l := range m.taps {
		scat := m.taps[l] - m.mean[l]
		scat = complex(m.rho, 0)*scat + complex(drive, 0)*m.noise.Sample(m.sigma[l]*m.sigma[l])
		m.taps[l] = m.mean[l] + scat
	}
}

// Transmit pushes tx through the channel and returns the received samples.
// The output has the same length as the input (the delay-line tail is
// truncated, matching a receiver that frame-syncs on the strongest path).
func (m *Model) Transmit(tx []complex128) []complex128 {
	sigPower := dsp.MeanPower(tx)
	rx := make([]complex128, len(tx))
	for n := range tx {
		if m.clock%m.upEvery == 0 {
			m.evolve()
		}
		var acc complex128
		for l := range m.taps {
			if n-l >= 0 {
				acc += m.taps[l] * tx[n-l]
			}
		}
		if m.epsRad != 0 {
			acc *= cmplx.Exp(complex(0, m.epsRad*float64(m.clock)))
		}
		rx[n] = acc
		m.clock++
	}
	if sigPower > 0 {
		m.noise.AddNoise(rx, dsp.NoiseVarianceForSNR(sigPower, m.cfg.SNRdB))
	}
	return rx
}

// FrequencyResponse returns the current 64-bin channel frequency response,
// mainly for tests and diagnostics.
func (m *Model) FrequencyResponse() []complex128 {
	h := make([]complex128, 64)
	copy(h, m.taps)
	if err := dsp.FFT(h); err != nil {
		panic(err) // 64 is a power of two
	}
	return h
}

// Reset rewinds the sample clock and redraws the fading state, keeping the
// configuration and RNG stream.
func (m *Model) Reset() {
	m.clock = 0
	m.drawInitialTaps()
}
