package channel

import (
	"math"
	"math/cmplx"
	"testing"

	"carpool/internal/dsp"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NumTaps: 0}); err == nil {
		t.Error("accepted zero taps")
	}
	if _, err := New(Config{NumTaps: 1, RicianK: -1}); err == nil {
		t.Error("accepted negative Rician K")
	}
	if _, err := New(Config{NumTaps: 3, SNRdB: 20}); err != nil {
		t.Errorf("rejected valid config: %v", err)
	}
}

func TestTransmitPreservesLength(t *testing.T) {
	m, err := New(Config{NumTaps: 4, SNRdB: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tx := make([]complex128, 333)
	for i := range tx {
		tx[i] = 1
	}
	rx := m.Transmit(tx)
	if len(rx) != len(tx) {
		t.Errorf("rx length %d, want %d", len(rx), len(tx))
	}
}

func TestTransmitDeterministicBySeed(t *testing.T) {
	mk := func() []complex128 {
		m, err := New(Config{NumTaps: 4, SNRdB: 15, Seed: 99, CoherenceSymbols: 50})
		if err != nil {
			t.Fatal(err)
		}
		tx := make([]complex128, 200)
		for i := range tx {
			tx[i] = complex(1, -1)
		}
		return m.Transmit(tx)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different outputs")
		}
	}
}

func TestAchievedSNR(t *testing.T) {
	// High-K single-tap channel: measure empirical SNR against target.
	const target = 12.0
	m, err := New(Config{NumTaps: 1, RicianK: 1e9, SNRdB: target, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := 200000
	tx := make([]complex128, n)
	for i := range tx {
		tx[i] = 1
	}
	rx := m.Transmit(tx)
	// The (essentially deterministic) channel gain is the mean of rx.
	var mean complex128
	for _, v := range rx {
		mean += v
	}
	mean /= complex(float64(n), 0)
	var noisePower float64
	for _, v := range rx {
		d := v - mean
		noisePower += real(d)*real(d) + imag(d)*imag(d)
	}
	noisePower /= float64(n)
	sigPower := real(mean)*real(mean) + imag(mean)*imag(mean)
	got := dsp.DB(sigPower / noisePower)
	if math.Abs(got-target) > 0.5 {
		t.Errorf("achieved SNR %.2f dB, want %.2f", got, target)
	}
}

func TestUnitAverageChannelGain(t *testing.T) {
	// Across many independent models, E[sum |h_l|^2] = 1.
	var total float64
	const trials = 2000
	for s := 0; s < trials; s++ {
		m, err := New(Config{NumTaps: 4, RicianK: 5, SNRdB: 100, Seed: int64(s)})
		if err != nil {
			t.Fatal(err)
		}
		for _, tap := range m.taps {
			total += real(tap)*real(tap) + imag(tap)*imag(tap)
		}
	}
	avg := total / trials
	if math.Abs(avg-1) > 0.05 {
		t.Errorf("mean tap energy %.4f, want 1", avg)
	}
}

func TestTimeVariationDecorrelates(t *testing.T) {
	// With a short coherence time, the frequency response after many
	// symbols must differ from the initial one; with variation disabled it
	// must stay identical.
	run := func(coherence float64) float64 {
		m, err := New(Config{NumTaps: 4, RicianK: 0, SNRdB: 200, Seed: 11, CoherenceSymbols: coherence})
		if err != nil {
			t.Fatal(err)
		}
		h0 := m.FrequencyResponse()
		tx := make([]complex128, 80*100) // 100 symbols
		for i := range tx {
			tx[i] = 1
		}
		m.Transmit(tx)
		h1 := m.FrequencyResponse()
		var diff, ref float64
		for i := range h0 {
			d := h1[i] - h0[i]
			diff += real(d)*real(d) + imag(d)*imag(d)
			ref += real(h0[i])*real(h0[i]) + imag(h0[i])*imag(h0[i])
		}
		return diff / ref
	}
	if d := run(0); d != 0 {
		t.Errorf("frozen channel drifted by %v", d)
	}
	if d := run(20); d < 0.1 {
		t.Errorf("20-symbol coherence channel drifted only %v over 100 symbols", d)
	}
	// Longer coherence time drifts less.
	if run(400) >= run(20) {
		t.Error("longer coherence time should drift less")
	}
}

func TestCFORotatesOutput(t *testing.T) {
	const cfo = 10e3
	m, err := New(Config{NumTaps: 1, RicianK: 1e12, SNRdB: 300, CFOHz: cfo, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tx := make([]complex128, 1000)
	for i := range tx {
		tx[i] = 1
	}
	rx := m.Transmit(tx)
	// Phase advance per sample should match 2*pi*cfo/fs.
	want := 2 * math.Pi * cfo / SampleRate
	var acc complex128
	for i := 1; i < len(rx); i++ {
		acc += rx[i] * cmplx.Conj(rx[i-1])
	}
	got := cmplx.Phase(acc)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("per-sample rotation %v, want %v", got, want)
	}
}

func TestMultipathIsFrequencySelective(t *testing.T) {
	m, err := New(Config{NumTaps: 6, RicianK: 0, SNRdB: 300, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	h := m.FrequencyResponse()
	minMag, maxMag := math.Inf(1), 0.0
	for _, v := range h {
		mag := cmplx.Abs(v)
		if mag < minMag {
			minMag = mag
		}
		if mag > maxMag {
			maxMag = mag
		}
	}
	if maxMag/minMag < 1.5 {
		t.Errorf("channel too flat: max/min magnitude ratio %.2f", maxMag/minMag)
	}
}

func TestResetRestartsClock(t *testing.T) {
	m, err := New(Config{NumTaps: 2, SNRdB: 20, CFOHz: 1e4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tx := make([]complex128, 100)
	for i := range tx {
		tx[i] = 1
	}
	m.Transmit(tx)
	m.Reset()
	if m.clock != 0 {
		t.Error("Reset did not rewind the clock")
	}
}

func TestSNRForPowerCalibration(t *testing.T) {
	got, err := SNRForPower(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-32) > 1e-9 {
		t.Errorf("SNR(0.2) = %v, want 32", got)
	}
	got, err = SNRForPower(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-12) > 1e-9 {
		t.Errorf("SNR(0.02) = %v, want 12 (20 dB per decade)", got)
	}
	if _, err := SNRForPower(0); err == nil {
		t.Error("accepted zero power")
	}
	if _, err := SNRForPower(-1); err == nil {
		t.Error("accepted negative power")
	}
	// Monotonic over the paper's sweep.
	prev := math.Inf(-1)
	for _, p := range PowerMagnitudes {
		snr, err := SNRForPower(p)
		if err != nil {
			t.Fatal(err)
		}
		if snr <= prev {
			t.Errorf("SNR not increasing at power %v", p)
		}
		prev = snr
	}
}

func TestOfficeLocations(t *testing.T) {
	locs := OfficeLocations()
	if len(locs) != 30 {
		t.Fatalf("%d locations, want 30", len(locs))
	}
	ids := map[int]bool{}
	for _, l := range locs {
		if l.X < 0 || l.X > 10 || l.Y < 0 || l.Y > 10 {
			t.Errorf("location %d at (%.1f, %.1f) outside the office", l.ID, l.X, l.Y)
		}
		if d := l.Distance(); d < 0.9 {
			t.Errorf("location %d only %.2f m from the transmitter", l.ID, d)
		}
		if ids[l.ID] {
			t.Errorf("duplicate location ID %d", l.ID)
		}
		ids[l.ID] = true
	}
	// Determinism.
	again := OfficeLocations()
	for i := range locs {
		if locs[i] != again[i] {
			t.Fatal("OfficeLocations is not deterministic")
		}
	}
}

func TestLocationSNRDecreasesWithDistance(t *testing.T) {
	near := Location{ID: 1, X: 5.5, Y: 6.5} // ~1.6 m
	far := Location{ID: 1, X: 0.5, Y: 0.5}  // ~6.4 m  (same ID -> same shadowing)
	snrNear, err := near.SNRAt(0.2)
	if err != nil {
		t.Fatal(err)
	}
	snrFar, err := far.SNRAt(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if snrNear <= snrFar {
		t.Errorf("near SNR %.1f <= far SNR %.1f", snrNear, snrFar)
	}
}

func TestLinkConfig(t *testing.T) {
	loc := OfficeLocations()[3]
	cfg, err := LinkConfig(loc, 0.1, 100, 500)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumTaps != 3 || cfg.RicianK != 15 || cfg.TapDecay != 3 {
		t.Error("unexpected default profile")
	}
	if cfg.CoherenceSymbols != 100 || cfg.CFOHz != 500 {
		t.Error("parameters not forwarded")
	}
	if _, err := LinkConfig(loc, -1, 0, 0); err == nil {
		t.Error("accepted negative power")
	}
	if _, err := New(cfg); err != nil {
		t.Errorf("LinkConfig produced invalid Config: %v", err)
	}
}
