package channel

import (
	"fmt"
	"math"
	"math/rand"
)

// The paper sweeps the USRP transmission gain through "power magnitude"
// values 0.0125 .. 0.2 (fractions of the XCVR2450's 20 dBm maximum). The
// magnitude is an amplitude, so each doubling adds 6 dB. We anchor the top
// setting (0.2) at 32 dB received SNR for the 3 m reference link, which
// places every modulation's measured BER in the same decade band the paper
// reports (QAM64 ~1e-4 .. 1e-2, BPSK at the measurement floor).
// The 32 dB anchor keeps the whole 30-location office inside QAM64's usable
// range at full power, as in the paper's testbed.
const (
	referencePower = 0.2
	referenceSNRdB = 32.0
)

// PowerMagnitudes are the five TX settings used throughout the paper's PHY
// evaluation (Figs. 11-12).
var PowerMagnitudes = []float64{0.0125, 0.025, 0.05, 0.1, 0.2}

// SNRForPower converts a USRP power magnitude to the reference-link SNR.
func SNRForPower(power float64) (float64, error) {
	if power <= 0 {
		return 0, fmt.Errorf("channel: power magnitude must be positive, got %v", power)
	}
	return referenceSNRdB + 20*math.Log10(power/referencePower), nil
}

// Location is one receiver position in the synthetic 10 m x 10 m office.
type Location struct {
	ID   int
	X, Y float64 // meters; the transmitter sits at (5, 5)
}

// Distance returns the TX-RX separation in meters.
func (l Location) Distance() float64 {
	dx, dy := l.X-5, l.Y-5
	return math.Hypot(dx, dy)
}

// SNRAt returns this location's average SNR for a given TX power magnitude:
// the calibrated reference SNR adjusted by log-distance path loss relative
// to the 3 m reference distance, plus a deterministic per-location
// shadowing term. The shallow exponent (1.4) and small shadowing sigma
// (1 dB) model a single line-of-sight room: the paper's testbed decoded
// QAM64 at every one of the 30 positions, so the farthest corners here sit
// only ~5 dB below the 3 m reference — degraded but usable.
func (l Location) SNRAt(power float64) (float64, error) {
	base, err := SNRForPower(power)
	if err != nil {
		return 0, err
	}
	const pathLossExp = 1.4
	const refDistance = 3.0
	d := l.Distance()
	if d < 0.5 {
		d = 0.5
	}
	loss := 10 * pathLossExp * math.Log10(d/refDistance)
	shadow := rand.New(rand.NewSource(int64(l.ID)*7919+17)).NormFloat64() * 1.0
	return base - loss + shadow, nil
}

// OfficeLocations returns the 30 receiver locations of the testbed layout
// (Fig. 10): a deterministic jittered grid around the centered transmitter,
// spanning distances of roughly 1.5 m to 6 m.
func OfficeLocations() []Location {
	rng := rand.New(rand.NewSource(42))
	locs := make([]Location, 0, 30)
	// 6 columns x 5 rows, excluding the transmitter cell.
	id := 0
	for i := 0; i < 6; i++ {
		for j := 0; j < 5; j++ {
			x := 1.0 + float64(i)*1.6 + rng.Float64()*0.8
			y := 1.0 + float64(j)*2.0 + rng.Float64()*0.8
			// Keep receivers off the transmitter's exact spot.
			if math.Hypot(x-5, y-5) < 1.0 {
				x += 1.5
			}
			locs = append(locs, Location{ID: id, X: x, Y: y})
			id++
		}
	}
	return locs
}

// DefaultCoherenceSymbols is the time-variation scale used by the BER-bias
// experiments: the paper transmits 4 KB frames in a 2 MHz channel (10x the
// 20 MHz symbol airtime, so a ~126-symbol frame occupies ~5 ms of air)
// against indoor coherence times of tens of milliseconds. 2000 symbols at
// the nominal rate puts the frame-length drift in the same few-percent band.
const DefaultCoherenceSymbols = 2000

// LinkConfig builds a channel Config for a location at a TX power, with the
// standard indoor office profile used across the evaluation: 3 taps with a
// steep (line-of-sight-dominated) decay, Rician K = 15, and the requested
// coherence time. Frames on one link should share one Model so the fading
// process persists.
func LinkConfig(loc Location, power float64, coherenceSymbols, cfoHz float64) (Config, error) {
	snr, err := loc.SNRAt(power)
	if err != nil {
		return Config{}, err
	}
	return Config{
		SNRdB:            snr,
		NumTaps:          3,
		RicianK:          15,
		TapDecay:         3,
		CoherenceSymbols: coherenceSymbols,
		CFOHz:            cfoHz,
		Seed:             int64(loc.ID)*104729 + 7,
	}, nil
}
