package channel

import (
	"math"
	"math/rand"
)

// jakesProcess generates a correlated complex fading process by the
// sum-of-sinusoids method: N plane waves with uniformly distributed angles
// of arrival and random phases, whose superposition has the classic Clarke
// autocorrelation J0(2*pi*fd*tau) and a U-shaped Doppler spectrum. It is an
// alternative to the default first-order Gauss-Markov tap evolution, for
// studies that care about the autocorrelation *shape* rather than just the
// coherence time.
type jakesProcess struct {
	// per-sinusoid parameters
	freq  []float64 // Doppler shift of each path, radians per update
	phase []float64
	amp   float64
	t     float64
}

// newJakesProcess builds a process whose autocorrelation falls to J0(2) ~
// 0.22... — conventionally, the coherence window — after coherenceUpdates
// steps: 2*pi*fd*tau = 1 at tau = coherenceUpdates.
func newJakesProcess(rng *rand.Rand, numSinusoids int, coherenceUpdates float64) *jakesProcess {
	if numSinusoids < 4 {
		numSinusoids = 8
	}
	p := &jakesProcess{
		freq:  make([]float64, numSinusoids),
		phase: make([]float64, numSinusoids),
		amp:   1 / math.Sqrt(float64(numSinusoids)),
	}
	// Maximum Doppler such that fdMax * coherenceUpdates = 1 radian.
	fdMax := 1.0 / coherenceUpdates
	for i := range p.freq {
		aoa := rng.Float64() * 2 * math.Pi
		p.freq[i] = fdMax * math.Cos(aoa)
		p.phase[i] = rng.Float64() * 2 * math.Pi
	}
	return p
}

// step advances one update and returns the unit-power complex gain.
func (p *jakesProcess) step() complex128 {
	p.t++
	var re, im float64
	for i := range p.freq {
		theta := p.freq[i]*p.t + p.phase[i]
		re += math.Cos(theta)
		im += math.Sin(theta)
	}
	return complex(re*p.amp, im*p.amp)
}

// FadingModel selects the tap time-variation process.
type FadingModel int

// Fading models.
const (
	// GaussMarkov is the default AR(1) evolution (exponential
	// autocorrelation).
	GaussMarkov FadingModel = iota
	// Jakes uses the sum-of-sinusoids process (Clarke/Jakes Bessel
	// autocorrelation and U-shaped Doppler spectrum).
	Jakes
)

// String names the model.
func (f FadingModel) String() string {
	switch f {
	case GaussMarkov:
		return "gauss-markov"
	case Jakes:
		return "jakes"
	default:
		return "FadingModel(?)"
	}
}
