package channel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestFadingModelString(t *testing.T) {
	if GaussMarkov.String() != "gauss-markov" || Jakes.String() != "jakes" {
		t.Error("wrong names")
	}
	if FadingModel(9).String() != "FadingModel(?)" {
		t.Error("wrong fallback")
	}
}

func TestJakesProcessUnitPower(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := newJakesProcess(rng, 16, 100)
	var power float64
	const n = 50000
	for i := 0; i < n; i++ {
		g := p.step()
		power += real(g)*real(g) + imag(g)*imag(g)
	}
	avg := power / n
	if math.Abs(avg-1) > 0.15 {
		t.Errorf("mean power %.3f, want ~1", avg)
	}
}

func TestJakesProcessCorrelationDecays(t *testing.T) {
	// Autocorrelation should be near 1 at tiny lags and decay by the
	// coherence window.
	rng := rand.New(rand.NewSource(2))
	const coherence = 200.0
	p := newJakesProcess(rng, 32, coherence)
	const n = 20000
	series := make([]complex128, n)
	for i := range series {
		series[i] = p.step()
	}
	corr := func(lag int) float64 {
		var acc complex128
		var power float64
		for i := 0; i+lag < n; i++ {
			acc += series[i+lag] * cmplx.Conj(series[i])
			power += real(series[i])*real(series[i]) + imag(series[i])*imag(series[i])
		}
		return real(acc) / power
	}
	if c := corr(5); c < 0.9 {
		t.Errorf("lag-5 correlation %.3f, want > 0.9", c)
	}
	// J0(1) ~ 0.77 at the 1-radian point (coherence updates).
	if c := corr(int(coherence)); c < 0.4 || c > 0.95 {
		t.Errorf("lag-coherence correlation %.3f, want ~J0(1)=0.77", c)
	}
	// Far beyond coherence the correlation must have fallen well off.
	if c := corr(int(6 * coherence)); math.Abs(c) > 0.5 {
		t.Errorf("lag-6x-coherence correlation %.3f, want small", c)
	}
}

func TestJakesChannelIntegration(t *testing.T) {
	// A Jakes-configured channel drifts over time like the AR(1) one.
	m, err := New(Config{
		NumTaps: 3, RicianK: 5, SNRdB: 200,
		CoherenceSymbols: 50, Fading: Jakes, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	h0 := m.FrequencyResponse()
	tx := make([]complex128, 80*500)
	for i := range tx {
		tx[i] = 1
	}
	m.Transmit(tx)
	h1 := m.FrequencyResponse()
	var diff, ref float64
	for i := range h0 {
		d := h1[i] - h0[i]
		diff += real(d)*real(d) + imag(d)*imag(d)
		ref += real(h0[i])*real(h0[i]) + imag(h0[i])*imag(h0[i])
	}
	if diff/ref < 0.01 {
		t.Errorf("Jakes channel drifted only %.4f over 10x coherence", diff/ref)
	}
	// Unit average energy is preserved (statistically).
	var e float64
	for _, tap := range m.taps {
		e += real(tap)*real(tap) + imag(tap)*imag(tap)
	}
	if e > 3 {
		t.Errorf("implausible tap energy %.2f", e)
	}
}

func TestJakesDeterministicBySeed(t *testing.T) {
	mk := func() []complex128 {
		m, err := New(Config{NumTaps: 2, RicianK: 5, SNRdB: 30,
			CoherenceSymbols: 100, Fading: Jakes, Seed: 44})
		if err != nil {
			t.Fatal(err)
		}
		tx := make([]complex128, 400)
		for i := range tx {
			tx[i] = 1
		}
		return m.Transmit(tx)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different Jakes outputs")
		}
	}
}
