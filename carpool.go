// Package carpool is the public facade of the Carpool library: a
// from-scratch Go reproduction of "Less Transmissions, More Throughput:
// Bringing Carpool to Public WLANs" (ICDCS 2015).
//
// Carpool aggregates downlink frames for multiple receivers into a single
// OFDM transmission. A 48-bit coded Bloom filter header (A-HDR) tells each
// station where its subframe sits; a phase-offset side channel carries
// per-symbol CRCs for free; and real-time channel estimation (RTE) uses
// correctly decoded symbols as data pilots so that long aggregated frames
// stay decodable as the channel drifts.
//
// The facade re-exports the library's main entry points:
//
//   - Frame construction and reception (BuildFrame, ReceiveFrame) over the
//     complete simulated 802.11 OFDM PHY,
//   - the channel models used to evaluate them (ChannelConfig, NewChannel),
//   - the trace-driven MAC simulator (MACConfig, RunMAC) with all six
//     protocol behaviours,
//   - the real-time AP aggregation engine (EngineConfig, NewEngine,
//     RunEngineDeterministic) behind cmd/carpoold,
//   - multi-AP coordinated serving (ClusterConfig, NewCluster,
//     RunClusterDeterministic) — roaming handoff, co-channel
//     interference, and the learning spatial-reuse scheduler behind
//     carpoold -aps, and
//   - the sequential-ACK NAV arithmetic (DataNAV, ReceiverNAV, ACKNAV).
//
// See examples/ for runnable end-to-end scenarios, DESIGN.md for the system
// map, and EXPERIMENTS.md for the reproduction of every table and figure.
package carpool

import (
	"context"
	"time"

	"carpool/internal/bloom"
	"carpool/internal/channel"
	"carpool/internal/cluster"
	"carpool/internal/core"
	"carpool/internal/engine"
	"carpool/internal/mac"
	"carpool/internal/mimo"
	"carpool/internal/phy"
	"carpool/internal/sidechannel"
	"carpool/internal/traffic"
)

// MAC is an IEEE 802 48-bit hardware address.
type MAC = bloom.MAC

// Bloom filter pieces of the aggregation header (§4.1).
type (
	// Filter is the 48-bit A-HDR Bloom filter.
	Filter = bloom.Filter
)

// BloomFalsePositiveRate returns the analytic §4.1 false-positive ratio for
// n receivers and h hashes.
func BloomFalsePositiveRate(n, h int) float64 { return bloom.FalsePositiveRate(n, h) }

// PHY frame types.
type (
	// MCS is one 802.11a modulation-and-coding scheme.
	MCS = phy.MCS
	// SIG is a decoded PLCP header.
	SIG = phy.SIG
	// TxFrame is a transmitted single-receiver frame with ground truth.
	TxFrame = phy.TxFrame
	// RxResult is a single-receiver reception.
	RxResult = phy.RxResult
)

// The eight 802.11a rates.
var (
	MCS6  = phy.MCS6
	MCS9  = phy.MCS9
	MCS12 = phy.MCS12
	MCS18 = phy.MCS18
	MCS24 = phy.MCS24
	MCS36 = phy.MCS36
	MCS48 = phy.MCS48
	MCS54 = phy.MCS54
)

// Carpool core types (§3-§5).
type (
	// Subframe is one receiver's share of a Carpool frame.
	Subframe = core.Subframe
	// FrameConfig controls Carpool frame construction.
	FrameConfig = core.FrameConfig
	// Frame is a built Carpool frame.
	Frame = core.Frame
	// ReceiverConfig configures a station's Carpool receiver.
	ReceiverConfig = core.ReceiverConfig
	// FrameRx is the outcome of one station hearing one Carpool frame.
	FrameRx = core.FrameRx
	// ErrTruncatedSubframe reports a sample buffer that ended inside a
	// matched subframe's DATA field, with the position and symbol index.
	ErrTruncatedSubframe = core.ErrTruncatedSubframe
	// SubframeRx is one decoded subframe.
	SubframeRx = core.SubframeRx
	// RTETracker is the real-time channel estimator (Eq. 3).
	RTETracker = core.RTETracker
	// Timing parameterizes the sequential-ACK NAV arithmetic.
	Timing = core.Timing
	// SideChannelScheme selects the phase-offset CRC granularity.
	SideChannelScheme = sidechannel.Scheme
)

// BuildFrame aggregates subframes for up to 8 stations into one Carpool
// frame (preamble, A-HDR, per-receiver SIG + DATA symbols).
func BuildFrame(subframes []Subframe, cfg FrameConfig) (*Frame, error) {
	return core.BuildFrame(subframes, cfg)
}

// ReceiveFrame runs one station's Carpool receive pipeline: A-HDR check,
// subframe skipping, RTE decoding of matched subframes.
func ReceiveFrame(rx []complex128, cfg ReceiverConfig) (*FrameRx, error) {
	return core.ReceiveFrame(rx, cfg)
}

// ReceiveFrameAll runs ReceiveFrame for every station concurrently across
// GOMAXPROCS workers — the natural shape of a Carpool downlink, where one
// transmission is decoded by many independent receivers. Results are
// bit-identical to calling ReceiveFrame in a sequential loop.
func ReceiveFrameAll(rxs [][]complex128, cfgs []ReceiverConfig) ([]*FrameRx, error) {
	return core.ReceiveFrameAll(rxs, cfgs)
}

// NewRTETracker returns a fresh real-time channel estimator usable with the
// single-receiver PHY (TransmitPHY/ReceivePHY) as well.
func NewRTETracker() *RTETracker { return core.NewRTETracker() }

// DefaultSideChannelScheme is the 2-bit, one-symbol-per-group CRC scheme
// Carpool ships with (§5.2).
func DefaultSideChannelScheme() SideChannelScheme { return sidechannel.DefaultScheme() }

// TransmitPHY builds a standard single-receiver 802.11 frame, optionally
// with the phase-offset side channel.
func TransmitPHY(payload []byte, cfg phy.TxConfig) (*TxFrame, error) {
	return phy.Transmit(payload, cfg)
}

// ReceivePHY decodes a single-receiver frame.
func ReceivePHY(rx []complex128, cfg phy.RxConfig) (*RxResult, error) {
	return phy.Receive(rx, cfg)
}

// PHY configuration aliases.
type (
	// PHYTxConfig controls single-receiver transmission.
	PHYTxConfig = phy.TxConfig
	// PHYRxConfig controls single-receiver reception.
	PHYRxConfig = phy.RxConfig
)

// Sequential ACK arithmetic (§4.2, Eqs. 1-2).
var (
	DataNAV     = core.DataNAV
	ReceiverNAV = core.ReceiverNAV
	ACKNAV      = core.ACKNAV
	AckSchedule = core.AckSchedule
	PlanRTS     = core.PlanRTS
)

// Channel model types.
type (
	// ChannelConfig describes one link.
	ChannelConfig = channel.Config
	// Channel is a stateful fading channel.
	Channel = channel.Model
	// Location is a receiver position in the synthetic office.
	Location = channel.Location
)

// NewChannel builds a channel model.
func NewChannel(cfg ChannelConfig) (*Channel, error) { return channel.New(cfg) }

// OfficeLocations returns the 30-position testbed layout (Fig. 10).
func OfficeLocations() []Location { return channel.OfficeLocations() }

// MAC simulation types.
type (
	// MACConfig parameterizes one trace-driven MAC simulation.
	MACConfig = mac.Config
	// MACResult aggregates one run's metrics.
	MACResult = mac.Result
	// Protocol selects the MAC behaviour (Carpool, AMPDU, ...).
	Protocol = mac.Protocol
)

// The six MAC behaviours.
const (
	Legacy80211   = mac.Legacy80211
	AMPDU         = mac.AMPDU
	MUAggregation = mac.MUAggregation
	WiFox         = mac.WiFox
	CarpoolMAC    = mac.Carpool
	AMSDU         = mac.AMSDU
)

// RunMAC executes one MAC simulation.
func RunMAC(cfg MACConfig) (*MACResult, error) { return mac.Run(cfg) }

// Real-time AP aggregation engine (internal/engine): the serving-path
// counterpart of the simulator, behind cmd/carpoold.
type (
	// Engine is a running AP downlink aggregation engine.
	Engine = engine.Engine
	// EngineConfig parameterizes an engine.
	EngineConfig = engine.Config
	// EngineStats is a point-in-time account of an engine run.
	EngineStats = engine.Stats
	// EngineBatchItem is one frame in a batched submission
	// (Engine.SubmitBatch): a station index plus payload bytes or a
	// size-only frame.
	EngineBatchItem = engine.BatchItem
	// EngineServer is the carpoold wire-protocol frontend: slab-batched
	// TCP/UDP ingest feeding one engine.
	EngineServer = engine.Server
	// EngineStageStats is the per-stage latency decomposition
	// (queue wait / backoff / air / decode) of lifecycle-sampled frames.
	EngineStageStats = engine.StageStats
	// EngineTelemetryUpdate is one push on a `subscribe` telemetry
	// stream: cumulative Stats, the delta since the previous update,
	// per-STA delivered bytes, and stage stats when sampling is on.
	EngineTelemetryUpdate = engine.TelemetryUpdate
	// EngineHealthConfig parameterizes the rolling-window health
	// detectors (retry storm, queue saturation, fairness collapse,
	// goodput stall).
	EngineHealthConfig = engine.HealthConfig
	// EngineHealthMonitor evaluates health detectors over recent Stats
	// samples and serves /debug/health via its Handler.
	EngineHealthMonitor = engine.HealthMonitor
	// EngineHealthReport is one health verdict with per-detector state.
	EngineHealthReport = engine.HealthReport
	// EngineSnapshot is one coherent engine view — Stats, stage
	// decomposition, and per-STA queue state captured atomically under
	// every admission-shard lock (Engine.SnapshotAll).
	EngineSnapshot = engine.Snapshot
)

// NewEngine validates cfg and returns an engine ready for Start.
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// Arrival is one scheduled traffic frame (internal/traffic), the unit of
// MACConfig.Downlink flows and deterministic engine workloads.
type Arrival = traffic.Arrival

// RunEngineDeterministic executes the engine single-threaded under a
// virtual clock; results are replayable and comparable to RunMAC.
func RunEngineDeterministic(ctx context.Context, cfg EngineConfig, flows [][]Arrival) (*EngineStats, error) {
	return engine.RunDeterministic(ctx, cfg, flows)
}

// NewEngineServer wraps a started engine in the wire-protocol frontend.
func NewEngineServer(e *Engine) *EngineServer { return engine.NewServer(e) }

// Multi-AP coordinated serving (internal/cluster): N engine shards — one
// per simulated AP — behind a rendezvous-hash STA→AP map with live
// roaming handoff, a cross-AP co-channel interference model, and a
// coordination scheduler for the deterministic mode. Behind
// cmd/carpoold -aps.
type (
	// Cluster is a running (or deterministically stepped) multi-AP
	// serving group.
	Cluster = cluster.Cluster
	// ClusterConfig parameterizes a cluster: AP count, channel plan,
	// interference matrix, coordination policy, and the per-AP engine
	// template.
	ClusterConfig = cluster.Config
	// ClusterStats is a cluster snapshot: the rollup Total, each AP's own
	// Stats, and the completed-handoff count.
	ClusterStats = cluster.Stats
	// ClusterRoamEvent schedules one station's handoff in a
	// deterministic run.
	ClusterRoamEvent = cluster.RoamEvent
	// ClusterMatrix is the pairwise co-channel erasure matrix.
	ClusterMatrix = cluster.Matrix
	// ClusterPolicy decides which APs transmit concurrently per virtual
	// slot in the deterministic runner.
	ClusterPolicy = cluster.Policy
	// ClusterBanditConfig tunes the learning spatial-reuse scheduler.
	ClusterBanditConfig = cluster.BanditConfig
)

// NewCluster validates cfg and builds the cluster's engines, ready for
// Start (the real-time mode behind carpoold -aps).
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// RunClusterDeterministic executes a whole cluster single-threaded under
// one shared virtual clock: flows drive each station, roams migrate
// stations between APs mid-run, and the configured policy coordinates
// which APs share each slot. A one-AP cluster reproduces
// RunEngineDeterministic bit for bit (the cluster-vs-single conformance
// pair pins this).
func RunClusterDeterministic(ctx context.Context, cfg ClusterConfig, flows [][]Arrival,
	roams []ClusterRoamEvent, horizon time.Duration) (*ClusterStats, error) {
	return cluster.RunDeterministic(ctx, cfg, flows, roams, horizon)
}

// UniformInterference builds an n-AP matrix with probability p on every
// off-diagonal pair — the carpoold -interference model.
func UniformInterference(n int, p float64) *ClusterMatrix { return cluster.Uniform(n, p) }

// NewClusterBandit returns the epsilon-greedy/UCB learning policy over
// the AP→channel assignment's feasible transmission sets.
func NewClusterBandit(channelOf []int, cfg ClusterBanditConfig) ClusterPolicy {
	return cluster.NewBandit(channelOf, cfg)
}

// NewEngineServerFor wraps any serving backend — an engine or a
// multi-AP cluster — in the wire-protocol frontend.
func NewEngineServerFor(b engine.ServerBackend) *EngineServer { return engine.NewServerFor(b) }

// NewEngineHealthMonitor returns a health monitor with cfg's detector
// thresholds (zero values take documented defaults).
func NewEngineHealthMonitor(cfg EngineHealthConfig) *EngineHealthMonitor {
	return engine.NewHealthMonitor(cfg)
}

// FrameKind classifies what follows a preamble (§4.3 coexistence).
type FrameKind = core.FrameKind

// Frame kinds.
const (
	KindUnknown = core.KindUnknown
	KindLegacy  = core.KindLegacy
	KindCarpool = core.KindCarpool
)

// ClassifyFrame tells a legacy frame from a Carpool frame by decoding the
// header region after the preamble, per §4.3's coexistence rule.
func ClassifyFrame(rx []complex128, knownStart int) (FrameKind, error) {
	return core.ClassifyFrame(rx, knownStart)
}

// SelectMCS picks the fastest scheme a link's SNR supports, with fading
// margin — the per-subframe rate selection §4.1 allows.
func SelectMCS(snrDB float64) MCS { return core.SelectMCS(snrDB) }

// MU-MIMO extension types (§8, Fig. 18).
type (
	// MIMOSubframe is one station's share of a MU-MIMO Carpool frame.
	MIMOSubframe = mimo.Subframe
	// MIMOGroup pairs two subframes on one zero-forcing precoder.
	MIMOGroup = mimo.Group
	// MIMOFrame is a built two-antenna Carpool frame.
	MIMOFrame = mimo.Frame
	// MIMOReceiverConfig configures a station's MU-MIMO receiver.
	MIMOReceiverConfig = mimo.ReceiverConfig
	// MIMOFrameRx is a station's view of one MU-MIMO frame.
	MIMOFrameRx = mimo.FrameRx
	// CSI is a station's per-antenna frequency response.
	CSI = mimo.CSI
)

// BuildMIMOFrame aggregates up to four stations in up to two zero-forcing
// groups into one two-antenna transmission.
func BuildMIMOFrame(groups []MIMOGroup, hashes int) (*MIMOFrame, error) {
	return mimo.BuildFrame(groups, hashes)
}

// ReceiveMIMOFrame runs a single-antenna station's MU-MIMO pipeline.
func ReceiveMIMOFrame(rx []complex128, cfg MIMOReceiverConfig) (*MIMOFrameRx, error) {
	return mimo.ReceiveFrame(rx, cfg)
}
