package carpool

// The benchmark suite regenerates every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Figure benchmarks
// execute the corresponding experiment harness at Quick scale and report
// the headline quantity as a custom metric; micro-benchmarks cover the hot
// paths (FFT, Viterbi, frame construction, MAC simulation). Ablation
// benchmarks quantify the design choices called out in DESIGN.md §5.

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"carpool/internal/bloom"
	"carpool/internal/core"
	"carpool/internal/dsp"
	"carpool/internal/engine"
	"carpool/internal/experiments"
	"carpool/internal/fec"
	"carpool/internal/mac"
	"carpool/internal/modem"
	"carpool/internal/obs"
	"carpool/internal/phy"
	"carpool/internal/sidechannel"
	"carpool/internal/traffic"
)

// ---------------------------------------------------------------------------
// Figure and table benchmarks (one per evaluation artifact).

func BenchmarkFig1TrafficStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats := experiments.Fig1()
		if len(stats) != 2 {
			b.Fatal("expected two traces")
		}
		b.ReportMetric(stats[0].DownlinkRatio*100, "downlink-%")
	}
}

func BenchmarkFig3BERBias(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		// Report the bias: tail BER over head BER.
		n := len(rows)
		head, tail := meanBER(rows[:n/4]), meanBER(rows[3*n/4:])
		if head > 0 {
			b.ReportMetric(tail/head, "tail/head-BER")
		}
	}
}

func meanBER(rows []experiments.Fig3Row) float64 {
	var s float64
	for _, r := range rows {
		s += r.BER
	}
	return s / float64(len(rows))
}

func BenchmarkTable1PhaseModulation(b *testing.B) {
	// Table 1 is a specification: benchmark the encode/decode round trip
	// of the full alphabet at symbol rate.
	enc, err := sidechannel.NewEncoder(sidechannel.TwoBit)
	if err != nil {
		b.Fatal(err)
	}
	dec, err := sidechannel.NewDecoder(sidechannel.TwoBit)
	if err != nil {
		b.Fatal(err)
	}
	dec.Prime(0)
	bits := []byte{1, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off, err := enc.Next(bits)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dec.Next(off); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11SideChannelImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, r := range rows {
			if r.BERStandard > 1e-4 && r.RelativeDelta > worst {
				worst = r.RelativeDelta
			}
		}
		b.ReportMetric(worst*100, "worst-rel-delta-%")
	}
}

func BenchmarkFig12SideChannelReliability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		better := 0
		for _, r := range rows {
			if r.SideBER <= r.DataBER {
				better++
			}
		}
		b.ReportMetric(float64(better)/float64(len(rows))*100, "side<=data-%")
	}
}

func BenchmarkFig13RTEBias(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		var stdTail, rteTail float64
		var n int
		for _, r := range rows {
			if r.SymbolIndex > 100 {
				stdTail += r.BERStandard
				rteTail += r.BERRTE
				n++
			}
		}
		if n > 0 && rteTail > 0 {
			b.ReportMetric(stdTail/rteTail, "std/RTE-tail-BER")
		}
	}
}

func BenchmarkFig14RTEModulations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig14(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		var gain float64
		for _, r := range rows {
			if r.Modulation.String() == "QAM64" && r.Power == 0.2 && r.BERRTE > 0 {
				gain = r.BERStandard / r.BERRTE
			}
		}
		b.ReportMetric(gain, "QAM64-std/RTE")
	}
}

// macLab is shared across the MAC figure benchmarks: trace collection is
// the expensive offline step and the figures all replay the same traces.
var (
	macLabOnce sync.Once
	macLab     *experiments.MACLab
	macLabErr  error
)

func sharedLab(b *testing.B) *experiments.MACLab {
	b.Helper()
	macLabOnce.Do(func() {
		macLab, macLabErr = experiments.NewMACLab(experiments.Quick)
	})
	if macLabErr != nil {
		b.Fatal(macLabErr)
	}
	return macLab
}

func BenchmarkFig15VoIP(b *testing.B) {
	lab := sharedLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := lab.Fig15()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(carpoolOverLegacy(rows), "carpool/802.11-goodput")
	}
}

func BenchmarkFig16Background(b *testing.B) {
	lab := sharedLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := lab.Fig16()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(carpoolOverLegacy(rows), "carpool/802.11-goodput")
	}
}

func carpoolOverLegacy(rows []experiments.MACRow) float64 {
	var cp, lg float64
	for _, r := range rows {
		if r.NumSTAs != 30 {
			continue
		}
		switch r.Protocol {
		case mac.Carpool:
			cp = r.GoodputMbps
		case mac.Legacy80211:
			lg = r.GoodputMbps
		}
	}
	if lg == 0 {
		return 0
	}
	return cp / lg
}

func BenchmarkFig17aLatencyBound(b *testing.B) {
	lab := sharedLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := lab.Fig17a()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Gain, "gain-at-10ms")
	}
}

func BenchmarkFig17bFrameSize(b *testing.B) {
	lab := sharedLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := lab.Fig17b()
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		if last.AMPDU > 0 {
			b.ReportMetric(last.Carpool/last.AMPDU, "gain-at-1500B")
		}
	}
}

func BenchmarkBloomFalsePositives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BloomStudy(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].MeasuredFP*100, "FP-at-8rx-%")
	}
}

func BenchmarkEnergyStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.EnergyStudy()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].NodeOverhead*100, "node-overhead-%")
	}
}

func BenchmarkGranularityStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Granularity(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "schemes")
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks (DESIGN.md §5).

func BenchmarkAblationRTEUpdateRule(b *testing.B) {
	for _, rule := range []core.UpdateRule{core.RuleHalving, core.RuleReplace, core.RuleEMA25} {
		rule := rule
		b.Run(rule.String(), func(b *testing.B) {
			scheme := sidechannel.DefaultScheme()
			rng := rand.New(rand.NewSource(9))
			payload := make([]byte, 3000)
			rng.Read(payload)
			var tailErr, tailBits int
			for i := 0; i < b.N; i++ {
				frame, err := TransmitPHY(payload, PHYTxConfig{MCS: MCS48, SideChannel: &scheme})
				if err != nil {
					b.Fatal(err)
				}
				ch, err := NewChannel(ChannelConfig{
					SNRdB: 30, NumTaps: 3, RicianK: 15, TapDecay: 3,
					CoherenceSymbols: 800, CFOHz: 400, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := ReceivePHY(ch.Transmit(frame.Samples), PHYRxConfig{
					KnownStart: 0, SkipFEC: true, SideChannel: &scheme,
					Tracker: core.NewRTETrackerWithRule(rule),
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Status != phy.StatusOK {
					continue
				}
				errs, bits := phy.CompareBlocks(frame.Blocks, res.Blocks)
				for k := 3 * len(errs) / 4; k < len(errs); k++ {
					tailErr += errs[k]
					tailBits += bits
				}
			}
			if tailBits > 0 {
				b.ReportMetric(float64(tailErr)/float64(tailBits)*1e6, "tail-BER-ppm")
			}
		})
	}
}

func BenchmarkAblationBloomHashes(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	for _, h := range []int{1, 2, 4, 6, 8} {
		h := h
		b.Run(hashName(h), func(b *testing.B) {
			hits, probes := 0, 0
			for i := 0; i < b.N; i++ {
				macs := make([]bloom.MAC, 8)
				for j := range macs {
					rng.Read(macs[j][:])
				}
				f, err := bloom.Build(macs, h)
				if err != nil {
					b.Fatal(err)
				}
				var foreign bloom.MAC
				rng.Read(foreign[:])
				for pos := 1; pos <= 8; pos++ {
					probes++
					if f.Match(foreign, pos, h) {
						hits++
					}
				}
			}
			b.ReportMetric(float64(hits)/float64(probes)*100, "FP-%")
		})
	}
}

func hashName(h int) string {
	return "h=" + string(rune('0'+h))
}

func BenchmarkAblationSideChannelGranularity(b *testing.B) {
	for _, alpha := range []sidechannel.Alphabet{sidechannel.OneBit, sidechannel.TwoBit} {
		for g := 1; g <= 3; g++ {
			scheme := sidechannel.Scheme{Alphabet: alpha, GroupSize: g}
			b.Run(scheme.String(), func(b *testing.B) {
				rng := rand.New(rand.NewSource(11))
				payload := make([]byte, 2000)
				rng.Read(payload)
				var okSyms, syms int
				for i := 0; i < b.N; i++ {
					frame, err := TransmitPHY(payload, PHYTxConfig{MCS: MCS48, SideChannel: &scheme})
					if err != nil {
						b.Fatal(err)
					}
					ch, err := NewChannel(ChannelConfig{
						SNRdB: 28, NumTaps: 3, RicianK: 15, TapDecay: 3,
						CoherenceSymbols: 2000, Seed: int64(i),
					})
					if err != nil {
						b.Fatal(err)
					}
					res, err := ReceivePHY(ch.Transmit(frame.Samples), PHYRxConfig{
						KnownStart: 0, SkipFEC: true, SideChannel: &scheme,
						Tracker: NewRTETracker(),
					})
					if err != nil {
						b.Fatal(err)
					}
					for _, ok := range res.SymbolOK {
						syms++
						if ok {
							okSyms++
						}
					}
				}
				if syms > 0 {
					b.ReportMetric(float64(okSyms)/float64(syms)*100, "data-pilot-%")
				}
			})
		}
	}
}

func BenchmarkAblationSequentialACK(b *testing.B) {
	for _, simultaneous := range []bool{false, true} {
		name := "sequential"
		if simultaneous {
			name = "simultaneous"
		}
		b.Run(name, func(b *testing.B) {
			var goodput float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(12))
				const n = 25
				down := make([][]traffic.Arrival, n)
				for j := range down {
					down[j] = traffic.CBRFlow(rng, 120, 10*time.Millisecond, 3*time.Second)
				}
				res, err := RunMAC(MACConfig{
					Protocol: CarpoolMAC, NumSTAs: n, Duration: 3 * time.Second,
					Seed: int64(i), Downlink: down, SaturatedUplink: true,
					SimultaneousACK: simultaneous,
				})
				if err != nil {
					b.Fatal(err)
				}
				goodput = res.DownlinkGoodputMbps
			}
			b.ReportMetric(goodput, "goodput-Mbps")
		})
	}
}

func BenchmarkAblationMaxReceivers(b *testing.B) {
	for _, maxRx := range []int{2, 4, 8} {
		maxRx := maxRx
		b.Run(rxName(maxRx), func(b *testing.B) {
			var goodput float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(13))
				const n = 30
				down := make([][]traffic.Arrival, n)
				for j := range down {
					down[j] = traffic.CBRFlow(rng, 120, 10*time.Millisecond, 3*time.Second)
				}
				res, err := RunMAC(MACConfig{
					Protocol: CarpoolMAC, NumSTAs: n, Duration: 3 * time.Second,
					Seed: int64(i), Downlink: down, SaturatedUplink: true,
					MaxReceivers: maxRx,
				})
				if err != nil {
					b.Fatal(err)
				}
				goodput = res.DownlinkGoodputMbps
			}
			b.ReportMetric(goodput, "goodput-Mbps")
		})
	}
}

func rxName(n int) string {
	return "rx=" + string(rune('0'+n))
}

func BenchmarkAblationSoftVsHardViterbi(b *testing.B) {
	// The future-work extension: soft-decision decoding vs the paper's
	// hard-decision prototype, at an Eb/N0 where hard decoding struggles.
	for _, soft := range []bool{false, true} {
		name := "hard"
		if soft {
			name = "soft"
		}
		b.Run(name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(19))
			info := make([]byte, 2406)
			for i := range info {
				info[i] = byte(rng.Intn(2))
			}
			coded, err := fec.ConvEncode(info, fec.Rate1_2)
			if err != nil {
				b.Fatal(err)
			}
			fails := 0
			for i := 0; i < b.N; i++ {
				const sigma = 0.75 // ~3.5 dB Eb/N0: the hard decoder's waterfall
				llrs := make([]float64, len(coded))
				hard := make([]byte, len(coded))
				for j, c := range coded {
					y := 1.0 - 2.0*float64(c) + rng.NormFloat64()*sigma
					llrs[j] = 2 * y / (sigma * sigma)
					if y < 0 {
						hard[j] = 1
					}
				}
				var dec []byte
				if soft {
					dec, err = fec.ViterbiDecodeSoft(llrs, fec.Rate1_2, len(info))
				} else {
					dec, err = fec.ViterbiDecode(hard, fec.Rate1_2, len(info))
				}
				if err != nil {
					b.Fatal(err)
				}
				for j := range info {
					if dec[j] != info[j] {
						fails++
						break
					}
				}
			}
			b.ReportMetric(float64(fails)/float64(b.N)*100, "FER-%")
		})
	}
}

// ---------------------------------------------------------------------------
// Hot-path micro-benchmarks.

func BenchmarkFFT64(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dsp.FFT(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViterbiDecode1500B(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	info := make([]byte, 12000)
	for i := range info {
		info[i] = byte(rng.Intn(2))
	}
	coded, err := fec.ConvEncode(info, fec.Rate1_2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fec.ViterbiDecode(coded, fec.Rate1_2, len(info)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(1500)
}

// softBenchLLRs builds the shared input of the soft-decode benchmarks: a
// 1500-byte MPDU's worth of rate-1/2 coded bits as mildly noisy LLRs.
func softBenchLLRs(b *testing.B) ([]float64, int) {
	b.Helper()
	rng := rand.New(rand.NewSource(15))
	info := make([]byte, 12000)
	for i := range info {
		info[i] = byte(rng.Intn(2))
	}
	coded, err := fec.ConvEncode(info, fec.Rate1_2)
	if err != nil {
		b.Fatal(err)
	}
	const sigma = 0.35 // ~high SNR; the decode cost is data-independent
	llrs := make([]float64, len(coded))
	for j, c := range coded {
		y := 1.0 - 2.0*float64(c) + rng.NormFloat64()*sigma
		llrs[j] = 2 * y / (sigma * sigma)
	}
	return llrs, len(info)
}

func BenchmarkViterbiDecodeSoft1500B(b *testing.B) {
	llrs, numInfo := softBenchLLRs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fec.ViterbiDecodeSoft(llrs, fec.Rate1_2, numInfo); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(1500)
}

func BenchmarkViterbiDecodeSoftQ1500B(b *testing.B) {
	llrs, numInfo := softBenchLLRs(b)
	qllrs := make([]int8, len(llrs))
	fec.QuantizeLLRsInto(qllrs, llrs, 1)
	var dec fec.SoftDecoder
	dst := make([]byte, numInfo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.DecodeInto(dst, qllrs, fec.Rate1_2, numInfo); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(1500)
}

// BenchmarkViterbiDecodeSoftQ8Lane1500B gates the 8-lane SWAR add-compare-
// select kernel: since the two-word rewrite, SoftDecoder.DecodeInto runs
// all 16 states as eight packed lanes across two uint64 metric words per
// rank. The separate name lets benchdiff -fail-over pin the fast path even
// as the legacy-named benchmark carries its pre-rewrite baseline.
func BenchmarkViterbiDecodeSoftQ8Lane1500B(b *testing.B) {
	llrs, numInfo := softBenchLLRs(b)
	qllrs := make([]int8, len(llrs))
	fec.QuantizeLLRsInto(qllrs, llrs, 1)
	var dec fec.SoftDecoder
	dst := make([]byte, numInfo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.DecodeInto(dst, qllrs, fec.Rate1_2, numInfo); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(1500)
}

// benchPHYSoftReceive measures the soft-decision receive of a full
// 1500-byte frame at the top rate, either through the float64 oracle chain
// or the quantized int8 fast path (the SoftFEC default).
func benchPHYSoftReceive(b *testing.B, float64Oracle bool) {
	rng := rand.New(rand.NewSource(19))
	payload := make([]byte, 1500)
	rng.Read(payload)
	frame, err := phy.Transmit(payload, phy.TxConfig{MCS: phy.MCS54})
	if err != nil {
		b.Fatal(err)
	}
	ch, err := NewChannel(ChannelConfig{
		SNRdB: 30, NumTaps: 3, RicianK: 15, TapDecay: 3, Seed: 19,
	})
	if err != nil {
		b.Fatal(err)
	}
	rx := ch.Transmit(frame.Samples)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := phy.Receive(rx, phy.RxConfig{
			KnownStart: 0, SoftFEC: true, SoftFloat64: float64Oracle,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != phy.StatusOK {
			b.Fatal("reception failed")
		}
	}
	b.SetBytes(1500)
}

func BenchmarkPHYReceiveSoftFloat1500B(b *testing.B) { benchPHYSoftReceive(b, true) }

func BenchmarkPHYReceiveSoftQ1500B(b *testing.B) { benchPHYSoftReceive(b, false) }

func BenchmarkCarpoolFrameBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	subs := make([]Subframe, 4)
	for i := range subs {
		payload := make([]byte, 400)
		rng.Read(payload)
		subs[i] = Subframe{
			Receiver: MAC{2, 0, 0, 0, 0, byte(i)}, MCS: MCS48, Payload: payload,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildFrame(subs, FrameConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCarpoolFrameReceive(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	subs := make([]Subframe, 4)
	for i := range subs {
		payload := make([]byte, 400)
		rng.Read(payload)
		subs[i] = Subframe{
			Receiver: MAC{2, 0, 0, 0, 0, byte(i)}, MCS: MCS48, Payload: payload,
		}
	}
	frame, err := BuildFrame(subs, FrameConfig{})
	if err != nil {
		b.Fatal(err)
	}
	ch, err := NewChannel(ChannelConfig{
		SNRdB: 30, NumTaps: 3, RicianK: 15, TapDecay: 3, Seed: 17,
	})
	if err != nil {
		b.Fatal(err)
	}
	rx := ch.Transmit(frame.Samples)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ReceiveFrame(rx, ReceiverConfig{
			MAC: subs[2].Receiver, UseRTE: true, KnownStart: 0,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != phy.StatusOK {
			b.Fatal("reception failed")
		}
	}
}

func BenchmarkMACSimulationSecond(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	const n = 30
	down := make([][]traffic.Arrival, n)
	for j := range down {
		down[j] = traffic.CBRFlow(rng, 120, 10*time.Millisecond, time.Second)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunMAC(MACConfig{
			Protocol: CarpoolMAC, NumSTAs: n, Duration: time.Second,
			Seed: int64(i), Downlink: down, SaturatedUplink: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Real-time engine benchmarks (internal/engine, behind cmd/carpoold).

// BenchmarkEngineDeterministicSecond replays one simulated second of
// 8-station Poisson downlink (≈40k frames) through the deterministic
// engine — admission, aggregation planning, oracle delivery, retry and
// latency accounting — end to end.
func BenchmarkEngineDeterministicSecond(b *testing.B) {
	flows := make([][]traffic.Arrival, 8)
	for sta := range flows {
		rng := rand.New(rand.NewSource(int64(sta) + 1))
		flows[sta] = traffic.PoissonFlow(rng, 5000, 1200, time.Second)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := RunEngineDeterministic(context.Background(), EngineConfig{
			NumSTAs:  8,
			QueueCap: 1 << 16,
		}, flows)
		if err != nil {
			b.Fatal(err)
		}
		if st.Pending != 0 {
			b.Fatal("deterministic run left backlog")
		}
	}
}

// BenchmarkEngineSubmitDrain10k measures the concurrent serving path: 10k
// size-only frames admitted through the mutex-guarded ingest, aggregated
// and delivered by the worker pool, then drained.
func BenchmarkEngineSubmitDrain10k(b *testing.B) {
	const frames = 10_000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewEngine(EngineConfig{NumSTAs: 8, QueueCap: 1 << 14, Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Start(context.Background()); err != nil {
			b.Fatal(err)
		}
		for k := 0; k < frames; k++ {
			if err := e.SubmitSize(k%8, 1200); err != nil {
				b.Fatal(err)
			}
		}
		if err := e.Drain(context.Background()); err != nil {
			b.Fatal(err)
		}
		if st := e.Stats(); st.Delivered != frames {
			b.Fatalf("delivered %d of %d", st.Delivered, frames)
		}
	}
	b.ReportMetric(float64(frames), "frames/op")
}

// BenchmarkEngineBatchSubmitDrain10k is BenchmarkEngineSubmitDrain10k
// through the batched admission path: the same 10k frames arrive as
// slab-sized SubmitBatch calls — one lock acquisition and at most one
// worker wakeup per group instead of per frame.
func BenchmarkEngineBatchSubmitDrain10k(b *testing.B) {
	const frames = 10_000
	const group = 512
	items := make([]EngineBatchItem, frames)
	for k := range items {
		items[k] = EngineBatchItem{STA: k % 8, Size: 1200}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewEngine(EngineConfig{NumSTAs: 8, QueueCap: 1 << 14, Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Start(context.Background()); err != nil {
			b.Fatal(err)
		}
		for base := 0; base < frames; base += group {
			n, err := e.SubmitBatch(items[base:min(base+group, frames)])
			if err != nil || n != min(group, frames-base) {
				b.Fatalf("batch at %d: accepted %d, err %v", base, n, err)
			}
		}
		if err := e.Drain(context.Background()); err != nil {
			b.Fatal(err)
		}
		if st := e.Stats(); st.Delivered != frames {
			b.Fatalf("delivered %d of %d", st.Delivered, frames)
		}
	}
	b.ReportMetric(float64(frames), "frames/op")
}

// BenchmarkWireBatchRoundtrip measures the full batched serving path over
// loopback TCP: 10k size-only records leave the client in 512-record
// grouped writes, the server's slab reads parse them in place and admit
// each slab as one engine batch, and the op ends with the drain handshake
// confirming all 10k delivered.
func BenchmarkWireBatchRoundtrip(b *testing.B) {
	const frames = 10_000
	const group = 512
	var stream []byte
	groups := make([][]byte, 0, frames/group+1)
	for k := 0; k < frames; k++ {
		if k%group == 0 && k > 0 {
			groups = append(groups, stream)
			stream = nil
		}
		stream = engine.AppendSizeRecord(stream, k%8, 1200)
	}
	groups = append(groups, stream)
	drain := engine.AppendControlRecord(nil, engine.RecDrain)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewEngine(EngineConfig{NumSTAs: 8, QueueCap: 1 << 14, Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		if err := e.Start(ctx); err != nil {
			b.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := NewEngineServer(e)
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ctx, ln) }()

		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		for _, g := range groups {
			if _, err := conn.Write(g); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := conn.Write(drain); err != nil {
			b.Fatal(err)
		}
		st, err := engine.ReadStatsReply(conn)
		if err != nil {
			b.Fatal(err)
		}
		if st.Delivered != frames {
			b.Fatalf("delivered %d of %d", st.Delivered, frames)
		}
		conn.Close()
		cancel()
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(frames), "frames/op")
}

// BenchmarkEngineDeterministicSampled is BenchmarkEngineDeterministicSecond
// with 1-in-8 frame-lifecycle sampling enabled — the observability-overhead
// arm benchdiff tracks against the unsampled baseline (sampling must not
// change Stats; this pins what it costs in time).
func BenchmarkEngineDeterministicSampled(b *testing.B) {
	flows := make([][]traffic.Arrival, 8)
	for sta := range flows {
		rng := rand.New(rand.NewSource(int64(sta) + 1))
		flows[sta] = traffic.PoissonFlow(rng, 5000, 1200, time.Second)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := RunEngineDeterministic(context.Background(), EngineConfig{
			NumSTAs:     8,
			QueueCap:    1 << 16,
			SampleEvery: 8,
		}, flows)
		if err != nil {
			b.Fatal(err)
		}
		if st.Pending != 0 {
			b.Fatal("deterministic run left backlog")
		}
	}
}

// BenchmarkEngineStats measures one Stats snapshot on a populated engine:
// the counters and latency-bucket copy happen under the engine lock, the
// quantile walks outside it, so this bounds the lock hold a telemetry
// subscriber or health monitor imposes per sample on the serving path.
func BenchmarkEngineStats(b *testing.B) {
	const frames = 20_000
	e, err := NewEngine(EngineConfig{NumSTAs: 32, QueueCap: 1 << 14, Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	for k := 0; k < frames; k++ {
		if err := e.SubmitSize(k%32, 1200); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Drain(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := e.Stats(); st.Delivered != frames {
			b.Fatalf("delivered %d of %d", st.Delivered, frames)
		}
	}
}

// benchEngineParallelSubmit drives a fixed 16,384-frame, 64-station
// workload through `conns` concurrent submitters, each batch-submitting
// its own station stripe — the contention profile of `conns` carpoolload
// connections hitting one carpoold. The engine, station count, and total
// work are identical across the family, so the 1→4→16 conns progression
// isolates admission-path scalability: with per-STA-shard admission
// lanes the stripes land on disjoint shards and the submitters stop
// serializing on a single engine mutex. The mutex-profile CI leg runs
// the 16-conn member and fails if SubmitBatch still dominates
// contention.
func benchEngineParallelSubmit(b *testing.B, conns int) {
	const totalFrames = 16_384
	const numSTAs = 64
	const group = 256
	perConn := totalFrames / conns
	staPerConn := numSTAs / conns
	items := make([][]EngineBatchItem, conns)
	for c := range items {
		items[c] = make([]EngineBatchItem, perConn)
		for k := range items[c] {
			items[c][k] = EngineBatchItem{STA: c*staPerConn + k%staPerConn, Size: 1200}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewEngine(EngineConfig{NumSTAs: numSTAs, QueueCap: 1 << 13, Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Start(context.Background()); err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		for c := 0; c < conns; c++ {
			wg.Add(1)
			go func(it []EngineBatchItem) {
				defer wg.Done()
				for base := 0; base < len(it); base += group {
					end := min(base+group, len(it))
					n, err := e.SubmitBatch(it[base:end])
					if err != nil || n != end-base {
						b.Errorf("batch at %d: accepted %d of %d, err %v", base, n, end-base, err)
						return
					}
				}
			}(items[c])
		}
		wg.Wait()
		if b.Failed() {
			b.FailNow()
		}
		if err := e.Drain(context.Background()); err != nil {
			b.Fatal(err)
		}
		if st := e.Stats(); st.Delivered != totalFrames {
			b.Fatalf("delivered %d of %d", st.Delivered, totalFrames)
		}
	}
	b.ReportMetric(totalFrames, "frames/op")
}

func BenchmarkEngineParallelSubmit1Conns(b *testing.B)  { benchEngineParallelSubmit(b, 1) }
func BenchmarkEngineParallelSubmit4Conns(b *testing.B)  { benchEngineParallelSubmit(b, 4) }
func BenchmarkEngineParallelSubmit16Conns(b *testing.B) { benchEngineParallelSubmit(b, 16) }

// BenchmarkDemapSoftQ64QAM measures the quantized QAM64 soft demapper on
// one OFDM symbol's 48 data points — the serving path's per-symbol demap
// cost through the vectorized 4-lane kernel.
func BenchmarkDemapSoftQ64QAM(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	bits := make([]byte, 48*6)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	points, err := modem.Map(modem.QAM64, bits)
	if err != nil {
		b.Fatal(err)
	}
	for i := range points {
		points[i] += complex(rng.NormFloat64()*0.1, rng.NormFloat64()*0.1)
	}
	dst := make([]int8, len(bits))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := modem.DemapSoftQInto(dst, modem.QAM64, points, 0.5); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(points)), "points/op")
}

// BenchmarkTracerEmit measures one ring-tracer event emission — the
// per-event cost every sampled lifecycle span and health transition pays.
func BenchmarkTracerEmit(b *testing.B) {
	tr := obs.NewTracer(1 << 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.EmitAt(int64(i), obs.EvFrameDeliver, 3, int64(i))
	}
	if tr.Len() == 0 {
		b.Fatal("tracer recorded nothing")
	}
}

// ---------------------------------------------------------------------------
// Erasure-coding kernels (DESIGN.md §15). The scratch-based RS codec over
// GF(256) runs on the transmit path of every StrategyFEC aggregate and on
// the receive path of every parity recovery, so benchdiff gates both
// kernels at 0 allocs/op.

func benchRSEncode(b *testing.B, k int) {
	const m, shardLen = 2, 1500
	rs, err := fec.NewRS(k, m)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, shardLen)
		rng.Read(data[i])
	}
	parity := make([][]byte, m)
	for j := range parity {
		parity[j] = make([]byte, shardLen)
	}
	b.SetBytes(int64(k * shardLen))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rs.EncodeInto(parity, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRSEncode4Sub encodes parity over a typical 4-subframe
// aggregate; BenchmarkRSEncode16Sub over a deep 16-subframe one.
func BenchmarkRSEncode4Sub(b *testing.B)  { benchRSEncode(b, 4) }
func BenchmarkRSEncode16Sub(b *testing.B) { benchRSEncode(b, 16) }

// BenchmarkRSReconstruct rebuilds two erased data shards of an 8+2 code —
// the worst admissible loss for that geometry, paying the Gauss-Jordan
// inversion plus two row-combine passes per op.
func BenchmarkRSReconstruct(b *testing.B) {
	const k, m, shardLen = 8, 2, 1500
	rs, err := fec.NewRS(k, m)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	shards := make([][]byte, k+m)
	for i := range shards {
		shards[i] = make([]byte, shardLen)
		if i < k {
			rng.Read(shards[i])
		}
	}
	if err := rs.EncodeInto(shards[k:], shards[:k]); err != nil {
		b.Fatal(err)
	}
	want2, want5 := append([]byte(nil), shards[2]...), append([]byte(nil), shards[5]...)
	present := make([]bool, k+m)
	for i := range present {
		present[i] = i != 2 && i != 5
	}
	b.SetBytes(2 * shardLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rs.ReconstructInto(shards, present); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if !bytes.Equal(shards[2], want2) || !bytes.Equal(shards[5], want5) {
		b.Fatal("reconstruction is not byte-true")
	}
}

// benchClusterSubmitDrain measures the multi-AP serving path: 10k
// size-only frames striped over 32 stations, routed to their APs by the
// lock-free STA→AP map, delivered by each AP's own worker, then drained
// cluster-wide. The AP count scales the routing fan-out and the number
// of independent worker pools contending for the machine.
func benchClusterSubmitDrain(b *testing.B, aps int) {
	const (
		frames  = 10_000
		numSTAs = 32
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewCluster(ClusterConfig{
			APs:    aps,
			Engine: EngineConfig{NumSTAs: numSTAs, QueueCap: 1 << 14, Workers: 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Start(context.Background()); err != nil {
			b.Fatal(err)
		}
		for k := 0; k < frames; k++ {
			if err := c.SubmitSize(k%numSTAs, 1200); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.Drain(context.Background()); err != nil {
			b.Fatal(err)
		}
		if st := c.Stats(); st.Delivered != frames {
			b.Fatalf("delivered %d of %d", st.Delivered, frames)
		}
	}
	b.ReportMetric(float64(frames), "frames/op")
}

func BenchmarkClusterSubmitDrain4AP(b *testing.B)  { benchClusterSubmitDrain(b, 4) }
func BenchmarkClusterSubmitDrain16AP(b *testing.B) { benchClusterSubmitDrain(b, 16) }

// BenchmarkBanditSchedulerStep measures one Pick/Observe cycle of the
// learning spatial-reuse scheduler on an 8-AP, two-channel cluster —
// the per-slot coordination overhead the deterministic runner pays.
func BenchmarkBanditSchedulerStep(b *testing.B) {
	channel := []int{0, 1, 0, 1, 0, 1, 0, 1}
	p := NewClusterBandit(channel, ClusterBanditConfig{Epsilon: 0.08, Seed: 7})
	bytesPerAP := make([]int64, len(channel))
	for a := range bytesPerAP {
		bytesPerAP[a] = int64(40_000 + 1_000*a)
	}
	const candidates = uint64(0xff)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := p.Pick(candidates)
		p.Observe(set, bytesPerAP, 2*time.Millisecond)
	}
}
