package carpool_test

import (
	"context"
	"fmt"
	"time"

	"carpool"
)

// Building a Carpool frame for three stations and reading its shape.
func ExampleBuildFrame() {
	frame, err := carpool.BuildFrame([]carpool.Subframe{
		{Receiver: carpool.MAC{2, 0, 0, 0, 0, 1}, MCS: carpool.MCS24, Payload: make([]byte, 300)},
		{Receiver: carpool.MAC{2, 0, 0, 0, 0, 2}, MCS: carpool.MCS48, Payload: make([]byte, 150)},
		{Receiver: carpool.MAC{2, 0, 0, 0, 0, 3}, MCS: carpool.MCS12, Payload: make([]byte, 500)},
	}, carpool.FrameConfig{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("subframes: %d\n", len(frame.Subframes))
	fmt.Printf("first subframe starts at symbol %d (after the 2-symbol A-HDR)\n",
		frame.Subframes[0].StartSymbol)
	// Output:
	// subframes: 3
	// first subframe starts at symbol 2 (after the 2-symbol A-HDR)
}

// A clean-channel loopback: every station extracts exactly its payload.
func ExampleReceiveFrame() {
	sta := carpool.MAC{2, 0, 0, 0, 0, 9}
	frame, err := carpool.BuildFrame([]carpool.Subframe{
		{Receiver: sta, MCS: carpool.MCS24, Payload: []byte("hello, carpool")},
	}, carpool.FrameConfig{})
	if err != nil {
		fmt.Println(err)
		return
	}
	rx, err := carpool.ReceiveFrame(frame.Samples, carpool.ReceiverConfig{
		MAC: sta, UseRTE: true, KnownStart: 0,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s\n", rx.Subframes[0].Payload)
	fmt.Printf("decoded %d of %d symbols\n", rx.SymbolsDecoded, rx.SymbolsHeard)
	// Output:
	// hello, carpool
	// decoded 5 of 5 symbols
}

// The sequential-ACK NAV arithmetic of §4.2 (Eqs. 1-2).
func ExampleDataNAV() {
	tm := carpool.Timing{
		SIFS:    10 * time.Microsecond,
		ACK:     44 * time.Microsecond,
		Payload: 500 * time.Microsecond,
	}
	nav, _ := carpool.DataNAV(tm, 3)
	fmt.Println("data frame reserves:", nav)
	sched, _ := carpool.AckSchedule(tm, 3)
	for i, at := range sched {
		fmt.Printf("ACK %d starts %v after the data frame\n", i+1, at)
	}
	// Output:
	// data frame reserves: 662µs
	// ACK 1 starts 10µs after the data frame
	// ACK 2 starts 64µs after the data frame
	// ACK 3 starts 118µs after the data frame
}

// Rate selection for a per-station SNR estimate.
func ExampleSelectMCS() {
	for _, snr := range []float64{6, 16, 31} {
		fmt.Printf("%2.0f dB -> %v\n", snr, carpool.SelectMCS(snr))
	}
	// Output:
	//  6 dB -> BPSK 1/2
	// 16 dB -> QPSK 3/4
	// 31 dB -> QAM64 3/4
}

// The §4.1 false-positive formula.
func ExampleBloomFalsePositiveRate() {
	fmt.Printf("8 receivers, h=4: %.2f%%\n", 100*carpool.BloomFalsePositiveRate(8, 4))
	// Output:
	// 8 receivers, h=4: 5.77%
}

// Serving one deterministic workload from a three-AP cluster, with a
// station handed off between APs mid-run. Handoffs are lossless — the
// migrated station's queue, retry counts, and backoff state move with it
// — so everything offered is delivered no matter where each station
// ends up.
func ExampleRunClusterDeterministic() {
	const numSTAs = 6
	flows := make([][]carpool.Arrival, numSTAs)
	for sta := range flows {
		for i := 0; i < 40; i++ {
			flows[sta] = append(flows[sta], carpool.Arrival{
				Time: time.Duration(i) * time.Millisecond,
				Size: 800,
			})
		}
	}
	st, err := carpool.RunClusterDeterministic(context.Background(),
		carpool.ClusterConfig{
			APs:    3,
			Engine: carpool.EngineConfig{NumSTAs: numSTAs},
		},
		flows,
		[]carpool.ClusterRoamEvent{
			{At: 10 * time.Millisecond, STA: 2, AP: 0},
			{At: 25 * time.Millisecond, STA: 2, AP: 2},
		},
		0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("delivered %d of %d frames across %d APs, %d handoffs\n",
		st.Total.Delivered, numSTAs*40, len(st.PerAP), st.Roams)
	// Output:
	// delivered 240 of 240 frames across 3 APs, 2 handoffs
}
