module carpool

go 1.24
