package carpool

// Full-stack integration tests: real 802.11 MAC frames (internal/dot11)
// ride inside Carpool subframes across the simulated PHY and channel, and
// the receivers answer with a NAV-correct sequential ACK train — the whole
// Fig. 2 / Fig. 6 exchange, bits on the air included.

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"carpool/internal/dot11"
	"carpool/internal/phy"
)

func TestFullStackExchange(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	ap := MAC{2, 0xAA, 0, 0, 0, 0}
	stas := []MAC{
		{2, 0, 0, 0, 0, 1}, {2, 0, 0, 0, 0, 2}, {2, 0, 0, 0, 0, 3},
	}
	tm := Timing{
		SIFS: 10 * time.Microsecond,
		ACK:  44 * time.Microsecond,
	}

	// 1. The AP wraps each station's payload in a real 802.11 QoS data
	// MPDU whose Duration field carries the aggregate's NAV (Eq. 1). The
	// NAV depends on the aggregate's airtime, which the AP knows from the
	// subframe sizes before transmitting — emulated here by building the
	// frame twice (the Duration field is fixed-size, so the airtime does
	// not change between passes).
	appPayloads := make([][]byte, len(stas))
	for i := range stas {
		appPayloads[i] = make([]byte, 200+60*i)
		rng.Read(appPayloads[i])
	}
	build := func() *Frame {
		subs := make([]Subframe, len(stas))
		for i, sta := range stas {
			mpdu, err := dot11.BuildCarpoolData(tm, len(stas), sta, ap, 100+i, appPayloads[i])
			if err != nil {
				t.Fatal(err)
			}
			mpdu.Payload = appPayloads[i]
			wire, err := mpdu.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			subs[i] = Subframe{Receiver: sta, MCS: MCS24, Payload: wire}
		}
		frame, err := BuildFrame(subs, FrameConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return frame
	}
	probe := build()
	tm.Payload = time.Duration(probe.AirtimeSeconds() * float64(time.Second))
	frame := build()
	if frame.AirtimeSeconds() != probe.AirtimeSeconds() {
		t.Fatal("airtime changed between passes")
	}

	// 2. Over the air.
	ch, err := NewChannel(ChannelConfig{
		SNRdB: 28, NumTaps: 3, RicianK: 15, TapDecay: 3,
		CoherenceSymbols: 2000, CFOHz: 500, Seed: 90,
	})
	if err != nil {
		t.Fatal(err)
	}
	air := ch.Transmit(append(frame.Samples, make([]complex128, 40)...))

	// 3. Each station extracts its subframe, verifies the MAC FCS, reads
	// the NAV, and prepares its sequential ACK.
	var acks []*dot11.ControlFrame
	for i, sta := range stas {
		res, err := ReceiveFrame(air, ReceiverConfig{MAC: sta, UseRTE: true, KnownStart: 0})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != phy.StatusOK || len(res.Subframes) == 0 {
			t.Fatalf("STA %d: status %v", i, res.Status)
		}
		mpdu, err := dot11.UnmarshalData(res.Subframes[0].Payload)
		if err != nil {
			t.Fatalf("STA %d: MAC frame corrupt: %v", i, err)
		}
		if mpdu.Addr1 != sta {
			t.Fatalf("STA %d: decoded someone else's MPDU (%v)", i, mpdu.Addr1)
		}
		if !bytes.Equal(mpdu.Payload, appPayloads[i]) {
			t.Fatalf("STA %d: application payload corrupted", i)
		}
		// The NAV in the MPDU must cover the whole exchange (Eq. 1).
		wantNAV, err := DataNAV(tm, len(stas))
		if err != nil {
			t.Fatal(err)
		}
		if diff := mpdu.Duration - wantNAV; diff < -time.Microsecond || diff > time.Microsecond {
			t.Errorf("STA %d: NAV %v, want ~%v", i, mpdu.Duration, wantNAV)
		}
		// Build this station's ACK with the remaining-train NAV.
		nav, err := ACKNAV(tm, res.Subframes[0].Position, len(stas))
		if err != nil {
			t.Fatal(err)
		}
		acks = append(acks, &dot11.ControlFrame{
			Type: dot11.TypeACK, Duration: nav, RA: ap,
		})
	}

	// 4. The AP validates the ACK train: strictly decreasing NAVs ending
	// at zero, one per receiver.
	n, err := dot11.ValidateACKTrain(tm, acks)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(stas) {
		t.Errorf("train covered %d receivers, want %d", n, len(stas))
	}
}

func TestFullStackForeignStationSilent(t *testing.T) {
	// A station outside the A-HDR must not produce an ACK — it drops the
	// frame after two symbols and its NAV (from the data frame header, had
	// it decoded one) keeps it silent anyway.
	rng := rand.New(rand.NewSource(91))
	payload := make([]byte, 300)
	rng.Read(payload)
	frame, err := BuildFrame([]Subframe{
		{Receiver: MAC{2, 0, 0, 0, 0, 1}, MCS: MCS24, Payload: payload},
	}, FrameConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReceiveFrame(frame.Samples, ReceiverConfig{
		MAC: MAC{2, 0xFF, 0, 0, 0, 0xEE}, KnownStart: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dropped {
		t.Error("foreign station decoded the frame")
	}
	if res.SymbolsDecoded != 2 {
		t.Errorf("foreign station decoded %d symbols, want 2 (A-HDR only)", res.SymbolsDecoded)
	}
}

func TestFullStackClassifierSeparatesTraffic(t *testing.T) {
	// Coexistence (§4.3): a Carpool node watching a mixed channel
	// classifies each frame correctly and only processes its own kind.
	rng := rand.New(rand.NewSource(92))
	payload := make([]byte, 250)
	rng.Read(payload)

	legacy, err := TransmitPHY(payload, PHYTxConfig{MCS: MCS12})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := BuildFrame([]Subframe{
		{Receiver: MAC{2, 0, 0, 0, 0, 5}, MCS: MCS24, Payload: payload},
	}, FrameConfig{})
	if err != nil {
		t.Fatal(err)
	}

	kind, err := ClassifyFrame(legacy.Samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindLegacy {
		t.Errorf("legacy frame classified as %v", kind)
	}
	kind, err = ClassifyFrame(cp.Samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindCarpool {
		t.Errorf("Carpool frame classified as %v", kind)
	}
}
